#include "support/process.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <memory>
#include <new>
#include <vector>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "support/log.h"

namespace mtc
{

Pipe::Pipe()
{
    if (::pipe(fds) != 0) {
        throw ProcessError(std::string("pipe failed: ") +
                           std::strerror(errno));
    }
}

Pipe::~Pipe()
{
    closeRead();
    closeWrite();
}

Pipe::Pipe(Pipe &&other) noexcept
{
    fds[0] = other.fds[0];
    fds[1] = other.fds[1];
    other.fds[0] = -1;
    other.fds[1] = -1;
}

Pipe &
Pipe::operator=(Pipe &&other) noexcept
{
    if (this != &other) {
        closeRead();
        closeWrite();
        fds[0] = other.fds[0];
        fds[1] = other.fds[1];
        other.fds[0] = -1;
        other.fds[1] = -1;
    }
    return *this;
}

void
Pipe::closeRead()
{
    if (fds[0] >= 0) {
        ::close(fds[0]);
        fds[0] = -1;
    }
}

void
Pipe::closeWrite()
{
    if (fds[1] >= 0) {
        ::close(fds[1]);
        fds[1] = -1;
    }
}

int
Pipe::releaseRead()
{
    const int fd = fds[0];
    fds[0] = -1;
    return fd;
}

int
Pipe::releaseWrite()
{
    const int fd = fds[1];
    fds[1] = -1;
    return fd;
}

ssize_t
readEintr(int fd, void *buf, std::size_t len)
{
    for (;;) {
        const ssize_t n = ::read(fd, buf, len);
        if (n >= 0 || errno != EINTR)
            return n;
    }
}

ssize_t
writeEintr(int fd, const void *buf, std::size_t len)
{
    for (;;) {
        const ssize_t n = ::write(fd, buf, len);
        if (n >= 0 || errno != EINTR)
            return n;
    }
}

namespace
{

ChildExit
classifyStatus(int status)
{
    ChildExit e;
    if (WIFSIGNALED(status)) {
        e.signaled = true;
        e.signal = WTERMSIG(status);
    } else if (WIFEXITED(status)) {
        e.exitCode = WEXITSTATUS(status);
    }
    return e;
}

/** Parent-only fd table, stored as fd+1 so the zero-initialized
 * static state means "empty slot". Lock-free (CAS per slot) because
 * the post-fork child of a multithreaded parent must be able to walk
 * it without taking a mutex some other thread held at fork time. */
constexpr std::size_t kMaxParentOnlyFds = 16;
std::atomic<int> parentOnlyFdsPlus1[kMaxParentOnlyFds];

} // anonymous namespace

void
registerParentOnlyFd(int fd)
{
    if (fd < 0)
        return;
    for (auto &slot : parentOnlyFdsPlus1) {
        int expect = 0;
        if (slot.compare_exchange_strong(expect, fd + 1))
            return;
    }
    throw ProcessError("parent-only fd registry full");
}

void
unregisterParentOnlyFd(int fd)
{
    if (fd < 0)
        return;
    for (auto &slot : parentOnlyFdsPlus1) {
        int expect = fd + 1;
        if (slot.compare_exchange_strong(expect, 0))
            return;
    }
}

void
closeParentOnlyFds()
{
    for (auto &slot : parentOnlyFdsPlus1) {
        const int plus1 = slot.load(std::memory_order_relaxed);
        if (plus1 > 0)
            ::close(plus1 - 1);
    }
}

ChildExit
waitChild(pid_t pid)
{
    int status = 0;
    for (;;) {
        if (::waitpid(pid, &status, 0) >= 0)
            break;
        if (errno == EINTR)
            continue;
        throw ProcessError("waitpid failed: " +
                           std::string(std::strerror(errno)));
    }
    return classifyStatus(status);
}

bool
tryWaitChild(pid_t pid, ChildExit &out)
{
    int status = 0;
    for (;;) {
        const pid_t got = ::waitpid(pid, &status, WNOHANG);
        if (got == 0)
            return false;
        if (got > 0)
            break;
        if (errno == EINTR)
            continue;
        throw ProcessError("waitpid failed: " +
                           std::string(std::strerror(errno)));
    }
    out = classifyStatus(status);
    return true;
}

bool
sandboxMemLimitSupported()
{
#ifdef MTC_SANITIZE_BUILD
    return false;
#else
    return true;
#endif
}

void
applySandboxLimits(std::uint64_t mem_mb, std::uint64_t cpu_s)
{
    if (mem_mb) {
        if (!sandboxMemLimitSupported()) {
            warn("sandbox: address-space budget ignored: sanitizer "
                 "builds need unlimited shadow mappings");
        } else {
            struct rlimit lim;
            lim.rlim_cur = static_cast<rlim_t>(mem_mb) << 20;
            lim.rlim_max = lim.rlim_cur;
            if (::setrlimit(RLIMIT_AS, &lim) != 0) {
                throw ProcessError(
                    "setrlimit(RLIMIT_AS) failed: " +
                    std::string(std::strerror(errno)));
            }
        }
    }
    if (cpu_s) {
        // Hard limit two seconds above soft: SIGXCPU at the soft
        // limit is catchable/ignorable in principle, SIGKILL at the
        // hard limit is the backstop.
        struct rlimit lim;
        lim.rlim_cur = static_cast<rlim_t>(cpu_s);
        lim.rlim_max = static_cast<rlim_t>(cpu_s) + 2;
        if (::setrlimit(RLIMIT_CPU, &lim) != 0) {
            throw ProcessError("setrlimit(RLIMIT_CPU) failed: " +
                               std::string(std::strerror(errno)));
        }
    }
}

namespace
{

int g_report_fd = -1;
char g_crash_unit[128] = "?";
std::uint64_t g_crash_seed = 0;

const char *
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV:
        return "SIGSEGV";
      case SIGABRT:
        return "SIGABRT";
      case SIGBUS:
        return "SIGBUS";
      case SIGFPE:
        return "SIGFPE";
      case SIGILL:
        return "SIGILL";
      case SIGXCPU:
        return "SIGXCPU";
      case SIGKILL:
        return "SIGKILL";
      default:
        return "signal";
    }
}

extern "C" void
crashReportHandler(int sig)
{
    // Async-signal-safe only: EmergencyLine formats into a stack
    // buffer and emits with a single write(2).
    EmergencyLine line;
    line.text("crash signal=")
        .num(static_cast<unsigned long long>(sig))
        .text(" (")
        .text(signalName(sig))
        .text(") unit=")
        .text(g_crash_unit)
        .text(" seed=")
        .hex(g_crash_seed);
    if (g_report_fd >= 0)
        line.writeTo(g_report_fd);
    emergencyLog(line.cstr());

    // Re-raise with the default disposition so the parent's waitpid
    // sees the genuine termination signal, core pattern intact.
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

} // anonymous namespace

void
installCrashReporter(int report_fd)
{
    g_report_fd = report_fd;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = crashReportHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_NODEFER;
    const int signals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
    for (const int sig : signals)
        ::sigaction(sig, &sa, nullptr);
}

void
setCrashContext(const std::string &unit, std::uint64_t seed)
{
    const std::size_t n =
        std::min(unit.size(), sizeof(g_crash_unit) - 1);
    std::memcpy(g_crash_unit, unit.data(), n);
    g_crash_unit[n] = '\0';
    g_crash_seed = seed;
}

void
clearCrashContext()
{
    g_crash_unit[0] = '?';
    g_crash_unit[1] = '\0';
    g_crash_seed = 0;
}

void
allocationBomb()
{
    // Touch one byte per page so the pages are actually committed and
    // an RLIMIT_AS budget (or, failing that, the self-cap) trips.
    constexpr std::size_t kChunkBytes = 16u << 20;
    constexpr std::size_t kMaxChunks = 32; // 512 MB self-cap
    std::vector<std::unique_ptr<char[]>> hoard;
    hoard.reserve(kMaxChunks);
    for (std::size_t i = 0; i < kMaxChunks; ++i) {
        hoard.emplace_back(new char[kChunkBytes]);
        char *chunk = hoard.back().get();
        for (std::size_t off = 0; off < kChunkBytes; off += 4096)
            chunk[off] = static_cast<char>(off);
    }
    throw std::bad_alloc();
}

} // namespace mtc
