#include "support/transport.h"

#include <utility>

#include <sys/socket.h>
#include <unistd.h>

namespace mtc
{

Transport::Transport(int read_fd, int write_fd, std::string stream_name)
    : rfd(read_fd), wfd(write_fd), duplex(false),
      name(std::move(stream_name))
{}

Transport::Transport(int socket_fd, std::string stream_name)
    : rfd(socket_fd), wfd(socket_fd), duplex(true),
      name(std::move(stream_name))
{}

Transport::~Transport()
{
    close();
}

Transport::Transport(Transport &&other) noexcept
    : rfd(other.rfd), wfd(other.wfd), duplex(other.duplex),
      name(std::move(other.name)), maxPayload(other.maxPayload)
{
    other.rfd = -1;
    other.wfd = -1;
}

Transport &
Transport::operator=(Transport &&other) noexcept
{
    if (this != &other) {
        close();
        rfd = other.rfd;
        wfd = other.wfd;
        duplex = other.duplex;
        name = std::move(other.name);
        maxPayload = other.maxPayload;
        other.rfd = -1;
        other.wfd = -1;
    }
    return *this;
}

void
Transport::send(const std::vector<std::uint8_t> &payload)
{
    if (wfd < 0)
        throw FramingError(name + ": send on a closed transport");
    writeFrame(wfd, payload, name);
}

bool
Transport::receive(std::vector<std::uint8_t> &payload)
{
    if (rfd < 0)
        return false; // closed locally reads as EOF
    return readFrame(rfd, payload, name, maxPayload);
}

void
Transport::closeSend()
{
    if (wfd < 0)
        return;
    if (duplex) {
        ::shutdown(wfd, SHUT_WR);
        wfd = -1; // rfd still owns the descriptor
    } else {
        ::close(wfd);
        wfd = -1;
    }
}

void
Transport::close()
{
    if (rfd >= 0)
        ::close(rfd);
    if (wfd >= 0 && wfd != rfd)
        ::close(wfd);
    rfd = -1;
    wfd = -1;
}

} // namespace mtc
