#include "support/transport.h"

#include <cstring>
#include <utility>

#include <sys/socket.h>
#include <unistd.h>

#include "support/hmac.h"

namespace mtc
{

namespace
{

/** Direction labels: frames MAC'd under one never verify under the
 * other, so an echoed frame cannot replay at its author. */
constexpr std::uint8_t kDirClientToServer = 0x43; // 'C'
constexpr std::uint8_t kDirServerToClient = 0x53; // 'S'

void
putLe64(std::uint8_t *out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getLe64(const std::uint8_t *in)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return v;
}

/** Truncated HMAC tag over dir || seq || payload. */
std::array<std::uint8_t, kFrameMacBytes>
frameMac(const std::vector<std::uint8_t> &key, std::uint8_t dir,
         std::uint64_t seq, const std::uint8_t *payload,
         std::size_t len)
{
    std::vector<std::uint8_t> msg;
    msg.reserve(1 + kFrameSeqBytes + len);
    msg.push_back(dir);
    std::uint8_t seq_le[kFrameSeqBytes];
    putLe64(seq_le, seq);
    msg.insert(msg.end(), seq_le, seq_le + kFrameSeqBytes);
    msg.insert(msg.end(), payload, payload + len);
    const auto full = hmacSha256(key, msg.data(), msg.size());
    std::array<std::uint8_t, kFrameMacBytes> tag;
    std::memcpy(tag.data(), full.data(), kFrameMacBytes);
    return tag;
}

} // anonymous namespace

Transport::Transport(int read_fd, int write_fd, std::string stream_name)
    : rfd(read_fd), wfd(write_fd), duplex(false),
      name(std::move(stream_name))
{}

Transport::Transport(int socket_fd, std::string stream_name)
    : rfd(socket_fd), wfd(socket_fd), duplex(true),
      name(std::move(stream_name))
{}

Transport::~Transport()
{
    Transport::close();
}

Transport::Transport(Transport &&other) noexcept
    : rfd(other.rfd), wfd(other.wfd), duplex(other.duplex),
      name(std::move(other.name)), maxPayload(other.maxPayload),
      recvDeadlineMs(other.recvDeadlineMs), authOn(other.authOn),
      authClient(other.authClient), authKey(std::move(other.authKey)),
      sendSeq(other.sendSeq), recvSeq(other.recvSeq)
{
    other.rfd = -1;
    other.wfd = -1;
}

Transport &
Transport::operator=(Transport &&other) noexcept
{
    if (this != &other) {
        Transport::close();
        rfd = other.rfd;
        wfd = other.wfd;
        duplex = other.duplex;
        name = std::move(other.name);
        maxPayload = other.maxPayload;
        recvDeadlineMs = other.recvDeadlineMs;
        authOn = other.authOn;
        authClient = other.authClient;
        authKey = std::move(other.authKey);
        sendSeq = other.sendSeq;
        recvSeq = other.recvSeq;
        other.rfd = -1;
        other.wfd = -1;
    }
    return *this;
}

void
Transport::enableFrameAuth(std::vector<std::uint8_t> session_key,
                           bool is_client)
{
    authOn = true;
    authClient = is_client;
    authKey = std::move(session_key);
    sendSeq = 0;
    recvSeq = 0;
}

std::vector<std::uint8_t>
Transport::buildFrame(const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> frame;
    if (!authOn) {
        appendFrame(frame, payload.data(), payload.size());
        return frame;
    }
    const std::uint8_t dir =
        authClient ? kDirClientToServer : kDirServerToClient;
    const std::uint64_t seq = sendSeq++;
    std::vector<std::uint8_t> body;
    body.reserve(payload.size() + kFrameAuthBytes);
    body = payload;
    std::uint8_t seq_le[kFrameSeqBytes];
    putLe64(seq_le, seq);
    body.insert(body.end(), seq_le, seq_le + kFrameSeqBytes);
    const auto tag =
        frameMac(authKey, dir, seq, payload.data(), payload.size());
    body.insert(body.end(), tag.begin(), tag.end());
    appendFrame(frame, body.data(), body.size());
    return frame;
}

void
Transport::sendRaw(const std::uint8_t *data, std::size_t len)
{
    if (wfd < 0)
        throw FramingError(name + ": send on a closed transport");
    writeFrameBytes(wfd, data, len, name);
}

void
Transport::send(const std::vector<std::uint8_t> &payload)
{
    const std::vector<std::uint8_t> frame = buildFrame(payload);
    sendRaw(frame.data(), frame.size());
}

bool
Transport::receive(std::vector<std::uint8_t> &payload)
{
    if (rfd < 0)
        return false; // closed locally reads as EOF
    if (!readFrame(rfd, payload, name, maxPayload, recvDeadlineMs))
        return false;
    if (!authOn)
        return true;

    if (payload.size() < kFrameAuthBytes)
        throw AuthError(name + ": frame too short to carry an auth "
                               "envelope (" +
                        std::to_string(payload.size()) + " bytes)");
    const std::size_t body_len = payload.size() - kFrameAuthBytes;
    const std::uint8_t *seq_le = payload.data() + body_len;
    const std::uint8_t *mac = seq_le + kFrameSeqBytes;
    const std::uint64_t seq = getLe64(seq_le);
    const std::uint8_t dir =
        authClient ? kDirServerToClient : kDirClientToServer;
    const auto expect =
        frameMac(authKey, dir, seq, payload.data(), body_len);
    if (!constantTimeEqual(mac, expect.data(), kFrameMacBytes))
        throw AuthError(name + ": frame MAC mismatch");
    if (seq != recvSeq)
        throw AuthError(name + ": frame sequence " +
                        std::to_string(seq) + " where " +
                        std::to_string(recvSeq) +
                        " was expected (replayed, reordered, or "
                        "dropped frame)");
    ++recvSeq;
    payload.resize(body_len);
    return true;
}

void
Transport::closeSend()
{
    if (wfd < 0)
        return;
    if (duplex) {
        ::shutdown(wfd, SHUT_WR);
        wfd = -1; // rfd still owns the descriptor
    } else {
        ::close(wfd);
        wfd = -1;
    }
}

void
Transport::close()
{
    if (rfd >= 0)
        ::close(rfd);
    if (wfd >= 0 && wfd != rfd)
        ::close(wfd);
    rfd = -1;
    wfd = -1;
}

} // namespace mtc
