/**
 * @file
 * Hand-rolled SHA-256 / HMAC-SHA256 for the fabric's pre-shared-key
 * transport authentication.
 *
 * The toolchain ships no crypto library, so the fabric carries its
 * own: a straight FIPS 180-4 SHA-256 and the RFC 2104 HMAC
 * construction over it. This is keyed integrity for a trusted-key
 * deployment (peers holding the same file prove possession and MAC
 * their frames) — not a general-purpose crypto library, and nothing
 * here encrypts: frame payloads cross the wire in the clear.
 */

#ifndef MTC_SUPPORT_HMAC_H
#define MTC_SUPPORT_HMAC_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mtc
{

constexpr std::size_t kSha256DigestBytes = 32;
constexpr std::size_t kSha256BlockBytes = 64;

/** Incremental FIPS 180-4 SHA-256. */
class Sha256
{
  public:
    Sha256() { reset(); }

    void reset();
    void update(const void *data, std::size_t len);
    std::array<std::uint8_t, kSha256DigestBytes> finish();

    /** One-shot convenience. */
    static std::array<std::uint8_t, kSha256DigestBytes>
    digest(const void *data, std::size_t len);

  private:
    void compress(const std::uint8_t block[kSha256BlockBytes]);

    std::uint32_t state[8];
    std::uint64_t totalBytes = 0;
    std::uint8_t buffer[kSha256BlockBytes];
    std::size_t buffered = 0;
};

/** RFC 2104 HMAC-SHA256 of @p data under @p key. */
std::array<std::uint8_t, kSha256DigestBytes>
hmacSha256(const std::vector<std::uint8_t> &key, const void *data,
           std::size_t len);

/**
 * Constant-time byte comparison — MAC checks must not leak how many
 * prefix bytes matched through their timing.
 */
bool constantTimeEqual(const std::uint8_t *a, const std::uint8_t *b,
                       std::size_t len);

/**
 * Read a fabric pre-shared key from @p path.
 *
 * Trailing whitespace/newlines are stripped (keys are usually written
 * by `head -c 32 /dev/urandom | base64 > key`); anything left must be
 * at least 16 bytes or the key is rejected.
 *
 * @throws ConfigError when the file is unreadable, empty, or the key
 *         is shorter than 16 bytes.
 */
std::vector<std::uint8_t> loadFabricKey(const std::string &path);

/**
 * A 16-byte handshake nonce. Freshness, not secrecy, is the goal:
 * entropy is drawn from std::random_device mixed with the clock and
 * pid, so two processes forked in the same tick still diverge.
 */
std::array<std::uint8_t, 16> randomNonce();

} // namespace mtc

#endif // MTC_SUPPORT_HMAC_H
