/**
 * @file
 * ASCII table and CSV emitters used by every benchmark binary.
 *
 * Each bench prints the rows of the paper figure/table it reproduces;
 * TablePrinter right-aligns numeric columns so the output matches the
 * paper's tabular presentation, and CsvWriter mirrors the same rows to
 * a file for offline plotting.
 */

#ifndef MTC_SUPPORT_TABLE_H
#define MTC_SUPPORT_TABLE_H

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace mtc
{

/** Column-aligned ASCII table builder. */
class TablePrinter
{
  public:
    /** Create with the header row. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Helper to format a double with fixed precision. */
    static std::string fmt(double value, int precision = 2);

    /** Helper to format an integer. */
    static std::string fmt(std::uint64_t value);

    /** Helper to format a percentage (0.93 -> "93.0%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render the full table to a stream. */
    void print(std::ostream &os) const;

    /** Render the rows as CSV (header first). */
    std::string toCsv() const;

    std::size_t numRows() const { return rows.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/** Write a CSV string to @p path, creating parent-less files only. */
void writeFile(const std::string &path, const std::string &contents);

} // namespace mtc

#endif // MTC_SUPPORT_TABLE_H
