#include "support/hmac.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <random>

#include <unistd.h>

#include "support/error.h"
#include "support/rng.h"

namespace mtc
{

namespace
{

constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

inline std::uint32_t
rotr(std::uint32_t v, int n)
{
    return (v >> n) | (v << (32 - n));
}

} // anonymous namespace

void
Sha256::reset()
{
    static constexpr std::uint32_t kInit[8] = {
        0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
        0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
    std::memcpy(state, kInit, sizeof(state));
    totalBytes = 0;
    buffered = 0;
}

void
Sha256::compress(const std::uint8_t block[kSha256BlockBytes])
{
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
        w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
               (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
               (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
               static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
        const std::uint32_t s0 = rotr(w[i - 15], 7) ^
                                 rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
        const std::uint32_t s1 = rotr(w[i - 2], 17) ^
                                 rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2],
                  d = state[3], e = state[4], f = state[5],
                  g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
        const std::uint32_t s1 =
            rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        const std::uint32_t ch = (e & f) ^ (~e & g);
        const std::uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
        const std::uint32_t s0 =
            rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

void
Sha256::update(const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    totalBytes += len;
    if (buffered) {
        const std::size_t take =
            std::min(len, kSha256BlockBytes - buffered);
        std::memcpy(buffer + buffered, bytes, take);
        buffered += take;
        bytes += take;
        len -= take;
        if (buffered == kSha256BlockBytes) {
            compress(buffer);
            buffered = 0;
        }
    }
    while (len >= kSha256BlockBytes) {
        compress(bytes);
        bytes += kSha256BlockBytes;
        len -= kSha256BlockBytes;
    }
    if (len) {
        std::memcpy(buffer, bytes, len);
        buffered = len;
    }
}

std::array<std::uint8_t, kSha256DigestBytes>
Sha256::finish()
{
    const std::uint64_t bit_len = totalBytes * 8;
    const std::uint8_t pad_byte = 0x80;
    update(&pad_byte, 1);
    static constexpr std::uint8_t zeros[kSha256BlockBytes] = {};
    while (buffered != kSha256BlockBytes - 8) {
        const std::size_t room =
            buffered < kSha256BlockBytes - 8
                ? (kSha256BlockBytes - 8) - buffered
                : kSha256BlockBytes - buffered;
        update(zeros, room);
    }
    std::uint8_t len_be[8];
    for (int i = 0; i < 8; ++i)
        len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    // Bypass update(): it would count the length word into totalBytes.
    std::memcpy(buffer + buffered, len_be, 8);
    compress(buffer);

    std::array<std::uint8_t, kSha256DigestBytes> out;
    for (int i = 0; i < 8; ++i) {
        out[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
        out[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
        out[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
        out[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
    }
    return out;
}

std::array<std::uint8_t, kSha256DigestBytes>
Sha256::digest(const void *data, std::size_t len)
{
    Sha256 h;
    h.update(data, len);
    return h.finish();
}

std::array<std::uint8_t, kSha256DigestBytes>
hmacSha256(const std::vector<std::uint8_t> &key, const void *data,
           std::size_t len)
{
    std::uint8_t block_key[kSha256BlockBytes] = {};
    if (key.size() > kSha256BlockBytes) {
        const auto hashed = Sha256::digest(key.data(), key.size());
        std::memcpy(block_key, hashed.data(), hashed.size());
    } else {
        std::memcpy(block_key, key.data(), key.size());
    }

    std::uint8_t ipad[kSha256BlockBytes];
    std::uint8_t opad[kSha256BlockBytes];
    for (std::size_t i = 0; i < kSha256BlockBytes; ++i) {
        ipad[i] = block_key[i] ^ 0x36;
        opad[i] = block_key[i] ^ 0x5c;
    }

    Sha256 inner;
    inner.update(ipad, sizeof(ipad));
    inner.update(data, len);
    const auto inner_digest = inner.finish();

    Sha256 outer;
    outer.update(opad, sizeof(opad));
    outer.update(inner_digest.data(), inner_digest.size());
    return outer.finish();
}

bool
constantTimeEqual(const std::uint8_t *a, const std::uint8_t *b,
                  std::size_t len)
{
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < len; ++i)
        acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return acc == 0;
}

std::vector<std::uint8_t>
loadFabricKey(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw ConfigError("cannot read fabric key file '" + path + "'");
    }
    std::vector<std::uint8_t> key(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    while (!key.empty()) {
        const std::uint8_t c = key.back();
        if (c == '\n' || c == '\r' || c == ' ' || c == '\t')
            key.pop_back();
        else
            break;
    }
    if (key.size() < 16) {
        throw ConfigError(
            "fabric key file '" + path + "' holds " +
            std::to_string(key.size()) +
            " key bytes; at least 16 are required (try: head -c 32 "
            "/dev/urandom | base64 > keyfile)");
    }
    return key;
}

std::array<std::uint8_t, 16> randomNonce()
{
    // random_device should be enough on its own, but freshness is
    // load-bearing for replay rejection, so fold in the clock and pid
    // in case a platform's random_device is deterministic.
    std::random_device rd;
    std::uint64_t mix =
        (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    mix ^= static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    mix ^= static_cast<std::uint64_t>(::getpid()) << 48;
    std::array<std::uint8_t, 16> nonce;
    for (std::size_t i = 0; i < nonce.size(); i += 8) {
        const std::uint64_t word = splitMix64(mix);
        for (std::size_t b = 0; b < 8; ++b)
            nonce[i + b] =
                static_cast<std::uint8_t>(word >> (8 * b));
    }
    return nonce;
}

} // namespace mtc
