#include "support/rng.h"

namespace mtc
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
    // xoshiro256** must not be seeded with an all-zero state; SplitMix64
    // cannot produce four consecutive zeros, so the state is valid here.
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        throw ConfigError("Rng::nextBelow with zero bound");
    // Debiased via rejection sampling on the top of the range.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextInRange(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        throw ConfigError("Rng::nextInRange with lo > hi");
    const std::uint64_t span = hi - lo;
    if (span == ~std::uint64_t(0))
        return (*this)();
    return lo + nextBelow(span + 1);
}

double
Rng::nextDouble()
{
    // 53 top bits scaled into [0, 1).
    return ((*this)() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::size_t
Rng::pickIndex(std::size_t size)
{
    return static_cast<std::size_t>(nextBelow(size));
}

Rng
Rng::split()
{
    // Hash the next two raw outputs into a fresh seed so the child
    // stream is decorrelated from the parent's continuation.
    std::uint64_t mix = (*this)();
    std::uint64_t other = (*this)();
    std::uint64_t state = mix ^ rotl(other, 31);
    return Rng(splitMix64(state));
}

} // namespace mtc
