#include "support/socket.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mtc
{

namespace
{

sockaddr_in
makeAddr(const std::string &host, std::uint16_t port)
{
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw SocketError("not an IPv4 address: " + host);
    return addr;
}

void
setNoDelay(int fd)
{
    // Best effort: a frame that waits out Nagle's timer would add
    // ~40ms to every lease round trip, but a platform without the
    // option is not an error.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // anonymous namespace

TcpListener::TcpListener(std::uint16_t port, const std::string &host)
{
    const sockaddr_in addr = makeAddr(host, port);
    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0)
        throw SocketError(std::string("socket failed: ") +
                          std::strerror(errno));
    // Coordinator restarts (crash recovery via --resume) must not
    // fight TIME_WAIT for their own port.
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listenFd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const std::string what = std::string("bind ") + host + ":" +
            std::to_string(port) + " failed: " + std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        throw SocketError(what);
    }
    if (::listen(listenFd, 64) != 0) {
        const std::string what =
            std::string("listen failed: ") + std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        throw SocketError(what);
    }
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(listenFd, reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0) {
        const std::string what =
            std::string("getsockname failed: ") + std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        throw SocketError(what);
    }
    boundPort = ntohs(bound.sin_port);
}

TcpListener::~TcpListener()
{
    close();
}

void
TcpListener::close()
{
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
}

int
TcpListener::acceptClient()
{
    for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd >= 0) {
            setNoDelay(fd);
            return fd;
        }
        if (errno == EINTR)
            continue;
        throw SocketError(std::string("accept failed: ") +
                          std::strerror(errno));
    }
}

int
connectTcp(const std::string &host, std::uint16_t port)
{
    const sockaddr_in addr = makeAddr(host, port);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw SocketError(std::string("socket failed: ") +
                          std::strerror(errno));
    for (;;) {
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0 ||
            errno == EISCONN) {
            // EISCONN: a connect interrupted by a signal completed in
            // the background; the retry finds it already established.
            setNoDelay(fd);
            return fd;
        }
        if (errno == EINTR || errno == EALREADY)
            continue;
        const std::string what = std::string("connect ") + host + ":" +
            std::to_string(port) + " failed: " + std::strerror(errno);
        ::close(fd);
        throw SocketError(what);
    }
}

} // namespace mtc
