#include "support/framing.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <unistd.h>

#include "support/process.h"

namespace mtc
{

std::uint32_t
fnv1a32(const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t hash = 0x811c9dc5u;
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 0x01000193u;
    }
    return hash;
}

std::uint64_t
fnv1a64(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

void
putLe32(std::uint8_t *out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
getLe32(const std::uint8_t *in)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
    return v;
}

void
appendFrame(std::vector<std::uint8_t> &out, const std::uint8_t *payload,
            std::size_t len)
{
    const std::size_t base = out.size();
    out.resize(base + kFrameHeaderBytes + len);
    putLe32(out.data() + base, static_cast<std::uint32_t>(len));
    putLe32(out.data() + base + 4, fnv1a32(out.data() + base, 4));
    putLe32(out.data() + base + 8, fnv1a32(payload, len));
    std::memcpy(out.data() + base + kFrameHeaderBytes, payload, len);
}

FrameView
parseFrame(const std::uint8_t *data, std::size_t size,
           std::uint32_t max_payload)
{
    FrameView view;
    if (size < kFrameHeaderBytes) {
        view.status = FrameStatus::Incomplete;
        return view;
    }
    const std::uint32_t len = getLe32(data);
    // The header check gates everything: until the length word proves
    // intact, `len` is not a byte count, it's noise.
    if (fnv1a32(data, 4) != getLe32(data + 4)) {
        view.status = FrameStatus::Corrupt;
        return view;
    }
    const std::uint32_t sum = getLe32(data + 8);
    if (len > max_payload) {
        view.status = FrameStatus::Corrupt;
        return view;
    }
    if (size < kFrameHeaderBytes + len) {
        view.status = FrameStatus::Incomplete;
        return view;
    }
    if (fnv1a32(data + kFrameHeaderBytes, len) != sum) {
        view.status = FrameStatus::Corrupt;
        return view;
    }
    view.status = FrameStatus::Complete;
    view.payload = data + kFrameHeaderBytes;
    view.length = len;
    view.frameBytes = kFrameHeaderBytes + len;
    return view;
}

namespace
{

void
writeAllFd(int fd, const std::uint8_t *data, std::size_t len,
           const std::string &what)
{
    while (len) {
        const ssize_t n = writeEintr(fd, data, len);
        if (n < 0) {
            throw FramingError(what + ": write failed: " +
                               std::strerror(errno));
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
}

/** @return bytes read; stops early only on EOF. */
std::size_t
readUpTo(int fd, std::uint8_t *data, std::size_t len,
         const std::string &what)
{
    std::size_t got = 0;
    while (got < len) {
        const ssize_t n = readEintr(fd, data + got, len - got);
        if (n < 0) {
            throw FramingError(what + ": read failed: " +
                               std::strerror(errno));
        }
        if (n == 0)
            break;
        got += static_cast<std::size_t>(n);
    }
    return got;
}

using FrameClock = std::chrono::steady_clock;

/** readUpTo against an absolute deadline: every wait polls with the
 * time remaining, and running out of it is a framing fault. A default
 * (epoch) deadline means "no deadline" — plain readUpTo. */
std::size_t
readUpToDeadline(int fd, std::uint8_t *data, std::size_t len,
                 const std::string &what,
                 FrameClock::time_point deadline)
{
    if (deadline == FrameClock::time_point{})
        return readUpTo(fd, data, len, what);
    std::size_t got = 0;
    while (got < len) {
        const auto left = std::chrono::duration_cast<
            std::chrono::milliseconds>(deadline - FrameClock::now());
        if (left.count() <= 0) {
            throw FramingError(
                what + ": frame stalled mid-read (" +
                std::to_string(got) + " of " + std::to_string(len) +
                " bytes before the frame deadline)");
        }
        pollfd pfd{fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1,
                              static_cast<int>(std::min<long long>(
                                  left.count(), 1000)));
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throw FramingError(what + ": poll failed: " +
                               std::strerror(errno));
        }
        if (rc == 0)
            continue; // re-check the deadline
        const ssize_t n = readEintr(fd, data + got, len - got);
        if (n < 0) {
            throw FramingError(what + ": read failed: " +
                               std::strerror(errno));
        }
        if (n == 0)
            break;
        got += static_cast<std::size_t>(n);
    }
    return got;
}

} // anonymous namespace

void
writeFrame(int fd, const std::vector<std::uint8_t> &payload,
           const std::string &what)
{
    // One buffer, one write() stream: if the writer dies mid-frame the
    // reader sees a torn frame, never an interleaved one.
    std::vector<std::uint8_t> frame;
    appendFrame(frame, payload.data(), payload.size());
    writeAllFd(fd, frame.data(), frame.size(), what);
}

void
writeFrameBytes(int fd, const std::uint8_t *data, std::size_t len,
                const std::string &what)
{
    writeAllFd(fd, data, len, what);
}

bool
readFrame(int fd, std::vector<std::uint8_t> &payload,
          const std::string &what, std::uint32_t max_payload,
          std::uint32_t frame_deadline_ms)
{
    // Waiting for a frame to START may block forever — an idle peer
    // is healthy. The deadline clock starts at the first byte.
    std::uint8_t header[kFrameHeaderBytes];
    std::size_t got = readUpTo(fd, header, 1, what);
    if (got == 0)
        return false; // clean EOF between frames
    const FrameClock::time_point deadline =
        frame_deadline_ms
            ? FrameClock::now() +
                  std::chrono::milliseconds(frame_deadline_ms)
            : FrameClock::time_point{};
    got += readUpToDeadline(fd, header + 1, kFrameHeaderBytes - 1,
                            what, deadline);
    if (got < kFrameHeaderBytes)
        throw FramingError(what + ": stream torn mid-header");
    const std::uint32_t len = getLe32(header);
    // Validate the length word before trusting it as a byte count —
    // see the file comment of framing.h: an unchecked corrupt length
    // stalls a blocking reader, which no payload checksum can catch.
    if (fnv1a32(header, 4) != getLe32(header + 4))
        throw FramingError(what +
                           ": frame header check mismatch (corrupt "
                           "length word)");
    const std::uint32_t sum = getLe32(header + 8);
    if (len > max_payload)
        throw FramingError(what + ": absurd frame length " +
                           std::to_string(len) + " (limit " +
                           std::to_string(max_payload) + ")");
    payload.resize(len);
    if (readUpToDeadline(fd, payload.data(), len, what, deadline) < len)
        throw FramingError(what + ": stream torn mid-payload");
    if (fnv1a32(payload.data(), payload.size()) != sum)
        throw FramingError(what + ": frame checksum mismatch");
    return true;
}

} // namespace mtc
