#include "support/framing.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "support/process.h"

namespace mtc
{

std::uint32_t
fnv1a32(const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t hash = 0x811c9dc5u;
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 0x01000193u;
    }
    return hash;
}

std::uint64_t
fnv1a64(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

void
putLe32(std::uint8_t *out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
getLe32(const std::uint8_t *in)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
    return v;
}

void
appendFrame(std::vector<std::uint8_t> &out, const std::uint8_t *payload,
            std::size_t len)
{
    const std::size_t base = out.size();
    out.resize(base + kFrameHeaderBytes + len);
    putLe32(out.data() + base, static_cast<std::uint32_t>(len));
    putLe32(out.data() + base + 4, fnv1a32(payload, len));
    std::memcpy(out.data() + base + kFrameHeaderBytes, payload, len);
}

FrameView
parseFrame(const std::uint8_t *data, std::size_t size,
           std::uint32_t max_payload)
{
    FrameView view;
    if (size < kFrameHeaderBytes) {
        view.status = FrameStatus::Incomplete;
        return view;
    }
    const std::uint32_t len = getLe32(data);
    const std::uint32_t sum = getLe32(data + 4);
    if (len > max_payload) {
        view.status = FrameStatus::Corrupt;
        return view;
    }
    if (size < kFrameHeaderBytes + len) {
        view.status = FrameStatus::Incomplete;
        return view;
    }
    if (fnv1a32(data + kFrameHeaderBytes, len) != sum) {
        view.status = FrameStatus::Corrupt;
        return view;
    }
    view.status = FrameStatus::Complete;
    view.payload = data + kFrameHeaderBytes;
    view.length = len;
    view.frameBytes = kFrameHeaderBytes + len;
    return view;
}

namespace
{

void
writeAllFd(int fd, const std::uint8_t *data, std::size_t len,
           const std::string &what)
{
    while (len) {
        const ssize_t n = writeEintr(fd, data, len);
        if (n < 0) {
            throw FramingError(what + ": write failed: " +
                               std::strerror(errno));
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
}

/** @return bytes read; stops early only on EOF. */
std::size_t
readUpTo(int fd, std::uint8_t *data, std::size_t len,
         const std::string &what)
{
    std::size_t got = 0;
    while (got < len) {
        const ssize_t n = readEintr(fd, data + got, len - got);
        if (n < 0) {
            throw FramingError(what + ": read failed: " +
                               std::strerror(errno));
        }
        if (n == 0)
            break;
        got += static_cast<std::size_t>(n);
    }
    return got;
}

} // anonymous namespace

void
writeFrame(int fd, const std::vector<std::uint8_t> &payload,
           const std::string &what)
{
    // One buffer, one write() stream: if the writer dies mid-frame the
    // reader sees a torn frame, never an interleaved one.
    std::vector<std::uint8_t> frame;
    appendFrame(frame, payload.data(), payload.size());
    writeAllFd(fd, frame.data(), frame.size(), what);
}

bool
readFrame(int fd, std::vector<std::uint8_t> &payload,
          const std::string &what, std::uint32_t max_payload)
{
    std::uint8_t header[kFrameHeaderBytes];
    const std::size_t got =
        readUpTo(fd, header, kFrameHeaderBytes, what);
    if (got == 0)
        return false; // clean EOF between frames
    if (got < kFrameHeaderBytes)
        throw FramingError(what + ": stream torn mid-header");
    const std::uint32_t len = getLe32(header);
    const std::uint32_t sum = getLe32(header + 4);
    if (len > max_payload)
        throw FramingError(what + ": absurd frame length " +
                           std::to_string(len) + " (limit " +
                           std::to_string(max_payload) + ")");
    payload.resize(len);
    if (readUpTo(fd, payload.data(), len, what) < len)
        throw FramingError(what + ": stream torn mid-payload");
    if (fnv1a32(payload.data(), payload.size()) != sum)
        throw FramingError(what + ": frame checksum mismatch");
    return true;
}

} // namespace mtc
