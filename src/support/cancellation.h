/**
 * @file
 * Cooperative cancellation token for the liveness layer.
 *
 * A post-silicon campaign must never block forever on one wedged test:
 * the watchdog (src/harness/watchdog.h) arms a deadline per platform
 * run and, when it expires, requests stop on the run's token. The
 * executors' scheduler loops poll the token between steps and abandon
 * the run with TestHungError, so a stuck ThreadPool worker is reclaimed
 * instead of stalling the pool until operator kill.
 *
 * The token lives in support (not harness) because the sim layer polls
 * it and `support <- sim <- harness` is the only legal include
 * direction. Polling is one relaxed atomic load — cheap enough for a
 * per-scheduler-step check; no ordering is needed because the only
 * communicated fact is the monotonic flag itself.
 */

#ifndef MTC_SUPPORT_CANCELLATION_H
#define MTC_SUPPORT_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <thread>

#include "support/error.h"

namespace mtc
{

/** One-shot cooperative stop flag (see file comment). */
class CancellationToken
{
  public:
    /** Ask the observing run to abandon itself (thread-safe). */
    void
    requestStop() noexcept
    {
        flag.store(true, std::memory_order_relaxed);
    }

    /** Polled by scheduler loops between steps. */
    bool
    stopRequested() const noexcept
    {
        return flag.load(std::memory_order_relaxed);
    }

    /** Re-arm the token for another run (single-threaded use only). */
    void
    reset() noexcept
    {
        flag.store(false, std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> flag{false};
};

/**
 * The stall drill's terminal state: spin (sleeping, not burning a
 * core) until @p cancel fires, then raise TestHungError. With a null
 * token this never returns — a faithful model of wedged silicon, and
 * the reason the drill must only be armed under a watchdog.
 */
[[noreturn]] inline void
stallUntilCancelled(const CancellationToken *cancel)
{
    for (;;) {
        if (cancel && cancel->stopRequested()) {
            throw TestHungError(
                "run abandoned by watchdog: platform wedged in "
                "injected infinite stall");
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
}

} // namespace mtc

#endif // MTC_SUPPORT_CANCELLATION_H
