/**
 * @file
 * Optional explicit-SIMD kernels for the signature hot loops, gated
 * by the MTC_SIMD CMake toggle. Every kernel has a scalar fallback
 * with bit-identical results — SIMD here only changes how fast the
 * same answer is found, never the answer — so MTC_SIMD=ON builds and
 * default builds produce identical signatures, benches, and tests.
 */

#ifndef MTC_SUPPORT_SIMD_H
#define MTC_SUPPORT_SIMD_H

#include <cstdint>

#if defined(MTC_SIMD) && defined(__SSE2__)
#include <emmintrin.h>
#elif defined(MTC_SIMD) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace mtc
{

/**
 * Index of the first element of [data, data+n) equal to @p value, or
 * @p n when absent — the branch-chain candidate scan of encodeInto,
 * where "first" matters because the comparison count it implies feeds
 * the Figure-10 perturbation model.
 */
inline std::uint32_t
firstIndexOfU32(const std::uint32_t *data, std::uint32_t n,
                std::uint32_t value)
{
#if defined(MTC_SIMD) && defined(__SSE2__)
    const __m128i needle = _mm_set1_epi32(static_cast<int>(value));
    std::uint32_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i chunk = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(data + i));
        const int mask =
            _mm_movemask_epi8(_mm_cmpeq_epi32(chunk, needle));
        if (mask) {
            return i +
                (static_cast<std::uint32_t>(__builtin_ctz(mask)) >> 2);
        }
    }
    for (; i < n; ++i) {
        if (data[i] == value)
            return i;
    }
    return n;
#elif defined(MTC_SIMD) && defined(__ARM_NEON)
    const uint32x4_t needle = vdupq_n_u32(value);
    std::uint32_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const uint32x4_t eq = vceqq_u32(vld1q_u32(data + i), needle);
        const uint64x2_t pair = vreinterpretq_u64_u32(eq);
        const std::uint64_t lo = vgetq_lane_u64(pair, 0);
        const std::uint64_t hi = vgetq_lane_u64(pair, 1);
        if (lo)
            return i + ((lo & 0xffffffffull) ? 0 : 1);
        if (hi)
            return i + 2 + ((hi & 0xffffffffull) ? 0 : 1);
    }
    for (; i < n; ++i) {
        if (data[i] == value)
            return i;
    }
    return n;
#else
    for (std::uint32_t i = 0; i < n; ++i) {
        if (data[i] == value)
            return i;
    }
    return n;
#endif
}

/**
 * Index of the first element where [a, a+n) and [b, b+n) differ, or
 * @p n when the ranges are equal — the delta-decode prefix probe: two
 * adjacent sorted signatures share a thread's word slice exactly when
 * this returns @p n for that slice.
 */
inline std::uint32_t
firstDiffU64(const std::uint64_t *a, const std::uint64_t *b,
             std::uint32_t n)
{
#if defined(MTC_SIMD) && defined(__SSE2__)
    std::uint32_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        const __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        const int mask =
            _mm_movemask_epi8(_mm_cmpeq_epi32(va, vb));
        if (mask != 0xffff)
            return i + ((mask & 0xff) == 0xff ? 1 : 0);
    }
    for (; i < n; ++i) {
        if (a[i] != b[i])
            return i;
    }
    return n;
#elif defined(MTC_SIMD) && defined(__ARM_NEON)
    std::uint32_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t eq = vreinterpretq_u64_u32(
            vceqq_u32(vreinterpretq_u32_u64(vld1q_u64(a + i)),
                      vreinterpretq_u32_u64(vld1q_u64(b + i))));
        const std::uint64_t lo = vgetq_lane_u64(eq, 0);
        const std::uint64_t hi = vgetq_lane_u64(eq, 1);
        if (lo != ~std::uint64_t(0))
            return i;
        if (hi != ~std::uint64_t(0))
            return i + 1;
    }
    for (; i < n; ++i) {
        if (a[i] != b[i])
            return i;
    }
    return n;
#else
    for (std::uint32_t i = 0; i < n; ++i) {
        if (a[i] != b[i])
            return i;
    }
    return n;
#endif
}

} // namespace mtc

#endif // MTC_SUPPORT_SIMD_H
