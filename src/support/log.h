/**
 * @file
 * Minimal leveled logging for library diagnostics.
 *
 * Follows the spirit of gem5's inform()/warn(): status messages never
 * abort. Benchmarks run with the default Warn level so figure output
 * stays clean; tests may raise verbosity to debug failures.
 */

#ifndef MTC_SUPPORT_LOG_H
#define MTC_SUPPORT_LOG_H

#include <sstream>
#include <string>

namespace mtc
{

enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Silent = 3,
};

/** Set the global threshold; messages below it are suppressed. */
void setLogLevel(LogLevel level);

/** Current global threshold. */
LogLevel logLevel();

/** Emit a message at @p level (to stderr) if it passes the threshold. */
void logMessage(LogLevel level, const std::string &text);

/** Informative status message. */
inline void
inform(const std::string &text)
{
    logMessage(LogLevel::Info, text);
}

/** Something looks suspicious but execution can continue. */
inline void
warn(const std::string &text)
{
    logMessage(LogLevel::Warn, text);
}

/** Verbose diagnostic, compiled in but usually filtered out. */
inline void
debug(const std::string &text)
{
    logMessage(LogLevel::Debug, text);
}

} // namespace mtc

#endif // MTC_SUPPORT_LOG_H
