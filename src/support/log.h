/**
 * @file
 * Minimal leveled logging for library diagnostics.
 *
 * Follows the spirit of gem5's inform()/warn(): status messages never
 * abort. Benchmarks run with the default Warn level so figure output
 * stays clean; tests may raise verbosity to debug failures.
 */

#ifndef MTC_SUPPORT_LOG_H
#define MTC_SUPPORT_LOG_H

#include <cstddef>
#include <sstream>
#include <string>

namespace mtc
{

enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Silent = 3,
};

/** Set the global threshold; messages below it are suppressed. */
void setLogLevel(LogLevel level);

/** Current global threshold. */
LogLevel logLevel();

/** Emit a message at @p level (to stderr) if it passes the threshold. */
void logMessage(LogLevel level, const std::string &text);

/** Informative status message. */
inline void
inform(const std::string &text)
{
    logMessage(LogLevel::Info, text);
}

/** Something looks suspicious but execution can continue. */
inline void
warn(const std::string &text)
{
    logMessage(LogLevel::Warn, text);
}

/** Verbose diagnostic, compiled in but usually filtered out. */
inline void
debug(const std::string &text)
{
    logMessage(LogLevel::Debug, text);
}

/**
 * Async-signal-safe line builder for fatal-signal paths.
 *
 * logMessage() goes through std::cerr, which allocates and locks —
 * both forbidden inside a signal handler. An EmergencyLine formats
 * into a fixed stack buffer with no allocation, locking, or errno
 * clobbering, and emits with a single write(2). Overlong content is
 * truncated, never overflowed. Used by the sandbox worker crash
 * handlers (src/support/process.h) to dump a one-line crash report.
 */
class EmergencyLine
{
  public:
    EmergencyLine &text(const char *s) noexcept;
    EmergencyLine &num(unsigned long long v) noexcept;
    EmergencyLine &hex(unsigned long long v) noexcept;

    /** Append '\n' and emit with one write(2); preserves errno. */
    void writeTo(int fd) noexcept;

    const char *cstr() const noexcept { return buf; }
    std::size_t size() const noexcept { return len; }

  private:
    void put(char c) noexcept;

    char buf[256] = {};
    std::size_t len = 0;
};

/** Async-signal-safe "[mtc:fatal] <msg>" line straight to stderr,
 * bypassing the level filter and every stream. */
void emergencyLog(const char *msg) noexcept;

} // namespace mtc

#endif // MTC_SUPPORT_LOG_H
