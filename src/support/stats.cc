#include "support/stats.h"

#include <cmath>
#include <sstream>

#include "support/error.h"

namespace mtc
{

void
RunningStat::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    total += x;
    const double delta = x - runningMean;
    runningMean += delta / static_cast<double>(n);
    m2 += delta * (x - runningMean);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double delta = other.runningMean - runningMean;
    const std::size_t combined = n + other.n;
    runningMean += delta * static_cast<double>(other.n) /
        static_cast<double>(combined);
    m2 += other.m2 + delta * delta *
        static_cast<double>(n) * static_cast<double>(other.n) /
        static_cast<double>(combined);
    total += other.total;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
    n = combined;
}

RunningStat
RunningStat::fromSumCount(double sum, std::size_t count)
{
    RunningStat stat;
    stat.n = count;
    stat.total = sum;
    stat.runningMean =
        count ? sum / static_cast<double>(count) : 0.0;
    return stat;
}

double
RunningStat::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::minimum() const
{
    return n ? lo : 0.0;
}

double
RunningStat::maximum() const
{
    return n ? hi : 0.0;
}

std::string
RunningStat::summary() const
{
    std::ostringstream os;
    os << "n=" << n << " mean=" << mean() << " sd=" << stddev()
       << " min=" << minimum() << " max=" << maximum();
    return os.str();
}

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : width(bucket_width), buckets(num_buckets, 0)
{
    if (bucket_width == 0)
        throw ConfigError("Histogram bucket width must be >= 1");
    if (num_buckets == 0)
        throw ConfigError("Histogram needs at least one bucket");
}

void
Histogram::add(std::uint64_t x)
{
    ++samples;
    const std::uint64_t idx = x / width;
    if (idx < buckets.size())
        ++buckets[idx];
    else
        ++overflow;
}

std::uint64_t
Histogram::bucketCount(std::size_t idx) const
{
    if (idx >= buckets.size())
        throw ConfigError("Histogram bucket index out of range");
    return buckets[idx];
}

std::string
Histogram::render() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (!buckets[i])
            continue;
        os << bucketLow(i) << "-" << (bucketLow(i) + width - 1) << ": "
           << buckets[i] << "\n";
    }
    if (overflow)
        os << ">=" << bucketLow(buckets.size()) << ": " << overflow << "\n";
    return os.str();
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        throw ConfigError("geometricMean of empty list");
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            throw ConfigError("geometricMean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace mtc
