#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace mtc
{

unsigned
ThreadPool::resolveThreads(unsigned requested)
{
    if (requested)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads, std::size_t queue_capacity)
{
    const unsigned n = resolveThreads(threads);
    capacity = queue_capacity ? queue_capacity
                              : static_cast<std::size_t>(n) * 4;
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    stop(true);
}

void
ThreadPool::stop(bool drain)
{
    // Discarded tasks must be destroyed *outside* the lock and *after*
    // the join: their destructors may run arbitrary captured state
    // (a parallelFor chunk's completion guard takes the caller's done
    // mutex), and destroying them after the workers have quiesced
    // guarantees no worker races the same task object.
    std::deque<std::function<void()>> discarded;
    {
        std::unique_lock<std::mutex> lock(mtx);
        if (joined)
            return;
        if (!drain)
            discarded.swap(queue);
        stopping = true;
    }
    taskReady.notify_all();
    queueSpace.notify_all();
    for (std::thread &worker : workers) {
        if (worker.joinable())
            worker.join();
    }
    {
        std::unique_lock<std::mutex> lock(mtx);
        joined = true;
    }
    discarded.clear();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            taskReady.wait(lock,
                           [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        queueSpace.notify_one();
        task();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        queueSpace.wait(lock, [this] {
            return stopping || queue.size() < capacity;
        });
        if (stopping)
            return; // shutting down; new work is dropped
        queue.push_back(std::move(task));
    }
    taskReady.notify_one();
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    if (!count)
        return;

    // One chunk task per worker pulling indices off a shared counter:
    // cheap dynamic load balancing without per-index queue traffic.
    struct Shared
    {
        std::atomic<std::size_t> next{0};
        std::size_t count;
        const std::function<void(std::size_t)> *body;

        std::mutex doneMtx;
        std::condition_variable done;
        std::size_t pending;
        std::exception_ptr firstError;
    };
    auto shared = std::make_shared<Shared>();
    shared->count = count;
    shared->body = &body;

    const std::size_t chunks =
        std::min<std::size_t>(count, workers.size());
    shared->pending = chunks;

    // Each chunk task carries a completion guard instead of reporting
    // done inline: whether the task runs, or stop(false) discards it
    // from the queue, or submit() drops it because the pool is already
    // stopping, the guard's destruction is what decrements `pending` —
    // so this caller can never deadlock waiting on a chunk the
    // shutdown threw away.
    struct ChunkGuard
    {
        std::shared_ptr<Shared> s;

        explicit ChunkGuard(std::shared_ptr<Shared> s_arg)
            : s(std::move(s_arg))
        {}

        ~ChunkGuard()
        {
            std::lock_guard<std::mutex> lock(s->doneMtx);
            if (--s->pending == 0)
                s->done.notify_all();
        }
    };

    for (std::size_t c = 0; c < chunks; ++c) {
        auto done_guard = std::make_shared<ChunkGuard>(shared);
        submit([shared, done_guard] {
            for (;;) {
                const std::size_t i =
                    shared->next.fetch_add(1, std::memory_order_relaxed);
                if (i >= shared->count)
                    break;
                try {
                    (*shared->body)(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(shared->doneMtx);
                    if (!shared->firstError)
                        shared->firstError = std::current_exception();
                }
            }
        });
    }

    std::unique_lock<std::mutex> lock(shared->doneMtx);
    shared->done.wait(lock, [&] { return shared->pending == 0; });
    if (shared->firstError)
        std::rethrow_exception(shared->firstError);
}

} // namespace mtc
