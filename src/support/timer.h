/**
 * @file
 * Wall-clock timing helpers for the checking-performance experiments.
 *
 * The paper reports topological-sorting time on a host machine
 * (Section 6.2); we likewise measure host wall-clock with a steady
 * clock, and additionally report architecture-independent work counters
 * collected by the checkers themselves.
 */

#ifndef MTC_SUPPORT_TIMER_H
#define MTC_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace mtc
{

/** Simple start/stop wall timer with accumulated elapsed time. */
class WallTimer
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Start (or restart) the timer. */
    void
    start()
    {
        startPoint = Clock::now();
        running = true;
    }

    /** Stop the timer, accumulating the elapsed span. */
    void
    stop()
    {
        if (running) {
            accumulated += Clock::now() - startPoint;
            running = false;
        }
    }

    /** Drop all accumulated time. */
    void
    reset()
    {
        accumulated = Clock::duration::zero();
        running = false;
    }

    /** Accumulated time in seconds (includes the running span). */
    double
    seconds() const
    {
        auto total = accumulated;
        if (running)
            total += Clock::now() - startPoint;
        return std::chrono::duration<double>(total).count();
    }

    /** Accumulated time in milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    Clock::time_point startPoint{};
    Clock::duration accumulated = Clock::duration::zero();
    bool running = false;
};

/** RAII guard that adds its lifetime to a WallTimer. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(WallTimer &timer_arg) : timer(timer_arg)
    {
        timer.start();
    }

    ~ScopedTimer() { timer.stop(); }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    WallTimer &timer;
};

} // namespace mtc

#endif // MTC_SUPPORT_TIMER_H
