/**
 * @file
 * Seeded network-fault decorator over Transport.
 *
 * The simulator's FaultInjector mangles signature readouts to prove
 * the analysis pipeline survives a noisy device under test; this is
 * the same discipline applied to the fabric's wire. A FaultyTransport
 * wraps a connected Transport and, driven by a seeded RNG, drops,
 * duplicates, delays, reorders, corrupts, slow-drips, or mid-frame
 * disconnects traffic in either direction — so heartbeat liveness,
 * lease revocation, backoff reconnect, and loss budgets get exercised
 * by real injected faults instead of only SIGKILL.
 *
 * Faults never forge a valid frame: corruption is caught by the frame
 * checksum (or the auth MAC), so an injected fault can break a
 * connection but can never smuggle a wrong result past the codec —
 * which is exactly the invariant the chaos CI gate asserts.
 */

#ifndef MTC_SUPPORT_FAULT_TRANSPORT_H
#define MTC_SUPPORT_FAULT_TRANSPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.h"
#include "support/transport.h"

namespace mtc
{

/** Per-direction fault probabilities, each in [0,1]. */
struct NetFaultRates
{
    double drop = 0.0;       ///< frame vanishes
    double duplicate = 0.0;  ///< frame arrives twice
    double corrupt = 0.0;    ///< one bit flipped on the wire
    double delay = 0.0;      ///< frame held for delayMs
    double reorder = 0.0;    ///< frame held and sent after its successor
    double drip = 0.0;       ///< frame trickled out in small chunks
    double disconnect = 0.0; ///< connection cut mid-frame

    bool any() const
    {
        return drop > 0 || duplicate > 0 || corrupt > 0 || delay > 0 ||
               reorder > 0 || drip > 0 || disconnect > 0;
    }
};

/** Full fault plan for one wrapped connection. */
struct NetFaultConfig
{
    NetFaultRates send; ///< faults applied to outgoing frames
    NetFaultRates recv; ///< faults applied to incoming frames
    std::uint32_t delayMs = 20; ///< hold time for delay faults
    std::uint64_t seed = 0;     ///< RNG seed (deterministic drills)

    bool any() const { return send.any() || recv.any(); }
};

/** Injected-fault counters, exposed for tests. */
struct NetFaultStats
{
    std::uint64_t sendDrops = 0;
    std::uint64_t sendDuplicates = 0;
    std::uint64_t sendCorrupts = 0;
    std::uint64_t sendDelays = 0;
    std::uint64_t sendReorders = 0;
    std::uint64_t sendDrips = 0;
    std::uint64_t sendDisconnects = 0;
    std::uint64_t recvDrops = 0;
    std::uint64_t recvDuplicates = 0;
    std::uint64_t recvCorrupts = 0;
    std::uint64_t recvDelays = 0;

    std::uint64_t total() const
    {
        return sendDrops + sendDuplicates + sendCorrupts + sendDelays +
               sendReorders + sendDrips + sendDisconnects + recvDrops +
               recvDuplicates + recvCorrupts + recvDelays;
    }
};

/** Fault-injecting decorator; see file comment. */
class FaultyTransport final : public Transport
{
  public:
    /** Takes ownership of @p inner_transport by move. */
    FaultyTransport(Transport &&inner_transport,
                    const NetFaultConfig &fault_config);

    bool valid() const override { return inner.valid(); }
    void send(const std::vector<std::uint8_t> &payload) override;
    bool receive(std::vector<std::uint8_t> &payload) override;
    void closeSend() override;
    void close() override;
    int receiveFd() const override { return inner.receiveFd(); }
    void setMaxFramePayload(std::uint32_t bytes) override
    {
        inner.setMaxFramePayload(bytes);
    }
    void setReceiveDeadlineMs(std::uint32_t ms) override
    {
        inner.setReceiveDeadlineMs(ms);
    }
    void enableFrameAuth(std::vector<std::uint8_t> session_key,
                         bool is_client) override
    {
        inner.enableFrameAuth(std::move(session_key), is_client);
    }

    const NetFaultStats &stats() const { return faultStats; }

  private:
    void writeWithFaults(std::vector<std::uint8_t> frame);

    /** True when the receive fd has bytes (or EOF) ready right now —
     * the precondition for a recv-side drop to be deadlock-free. */
    bool inputPending() const;

    Transport inner;
    NetFaultConfig cfg;
    Rng rng;
    NetFaultStats faultStats;

    /** One frame held back by a reorder fault. */
    std::vector<std::uint8_t> heldFrame;
    bool holdingFrame = false;

    /** One payload queued by a receive-side duplicate fault. */
    std::vector<std::uint8_t> duplicatedRecv;
    bool duplicatePending = false;
};

} // namespace mtc

#endif // MTC_SUPPORT_FAULT_TRANSPORT_H
