/**
 * @file
 * Memory consistency model definitions and ordering predicates.
 *
 * An MCM is captured operationally by two predicates over pairs of
 * program-ordered operations from the same thread:
 *
 *  - programOrderRequired(): must the earlier op become globally
 *    visible before the later one when they target *different*
 *    addresses? (SC: always; TSO: all but store->load; RMO: never,
 *    unless one of the two is a fence.)
 *
 *  - sameAddressOrderRequired(): must they stay ordered when they
 *    target the *same* address? These capture per-location coherence
 *    (st->st, ld->st, ld->ld). Intra-thread st->ld same-address edges
 *    are deliberately excluded, mirroring the paper's footnote 4: with
 *    store forwarding on non-single-copy-atomic machines those edges
 *    produce false positives.
 *
 * Both the executors in mtc::sim (to decide which operations are
 * eligible to perform next) and the constraint-graph builder in
 * mtc::graph (to emit intra-thread consistency edges) consume the same
 * predicates, so the checker's model always matches the platform's
 * intended model.
 */

#ifndef MTC_MCM_MEMORY_MODEL_H
#define MTC_MCM_MEMORY_MODEL_H

#include <cstdint>
#include <string>

#include "mcm/op_kind.h"

namespace mtc
{

/** Memory consistency models supported by the framework. */
enum class MemoryModel : std::uint8_t
{
    SC,  ///< Sequential consistency (Lamport).
    TSO, ///< Total store order (x86-TSO / SPARC TSO).
    RMO, ///< Relaxed / weakly-ordered model (ARMv7-style).
};

/** Display name ("SC", "TSO", "RMO"). */
std::string modelName(MemoryModel model);

/** Parse a model name (case-insensitive). */
MemoryModel parseModel(const std::string &text);

/**
 * Must an earlier op of kind @p first stay ordered before a later op of
 * kind @p second from the same thread when they access different
 * addresses?
 */
bool programOrderRequired(MemoryModel model, OpKind first, OpKind second);

/**
 * Must they stay ordered when they access the same address? Encodes
 * per-location coherence; st->ld is excluded (store forwarding, see
 * file comment).
 */
bool sameAddressOrderRequired(MemoryModel model, OpKind first,
                              OpKind second);

/**
 * True if @p weaker permits every reordering @p stronger permits (and
 * possibly more). Used by tests asserting, e.g., that every SC
 * execution also satisfies TSO.
 */
bool atLeastAsWeak(MemoryModel weaker, MemoryModel stronger);

} // namespace mtc

#endif // MTC_MCM_MEMORY_MODEL_H
