#include "mcm/isa.h"

#include <algorithm>
#include <cctype>

#include "mcm/memory_model.h"
#include "support/error.h"

namespace mtc
{

std::string
isaName(Isa isa)
{
    switch (isa) {
      case Isa::X86:
        return "x86";
      case Isa::ARMv7:
        return "ARM";
    }
    return "?";
}

Isa
parseIsa(const std::string &text)
{
    std::string lower(text);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "x86" || lower == "x86-64" || lower == "x86_64")
        return Isa::X86;
    if (lower == "arm" || lower == "armv7")
        return Isa::ARMv7;
    throw ConfigError("unknown ISA: " + text);
}

MemoryModel
defaultModel(Isa isa)
{
    switch (isa) {
      case Isa::X86:
        return MemoryModel::TSO;
      case Isa::ARMv7:
        return MemoryModel::RMO;
    }
    return MemoryModel::SC;
}

unsigned
registerBits(Isa isa)
{
    switch (isa) {
      case Isa::X86:
        return 64;
      case Isa::ARMv7:
        return 32;
    }
    return 64;
}

} // namespace mtc
