/**
 * @file
 * Instruction-set-architecture descriptors for the two platforms the
 * paper evaluates (Table 1): an x86-64 desktop (x86-TSO) and an ARMv7
 * SoC (weakly-ordered model). The ISA determines the default memory
 * model, the register width used for signature words (Section 3.2:
 * "registers are either 64-bit or 32-bit wide"), and the instruction
 * encodings used by the code-size model.
 */

#ifndef MTC_MCM_ISA_H
#define MTC_MCM_ISA_H

#include <cstdint>
#include <string>

namespace mtc
{

enum class MemoryModel : std::uint8_t;

/** Supported instruction-set architectures. */
enum class Isa : std::uint8_t
{
    X86,
    ARMv7,
};

/** Display name matching the paper's configuration labels. */
std::string isaName(Isa isa);

/** Parse "x86" / "ARM" (case-insensitive) into an Isa. */
Isa parseIsa(const std::string &text);

/** Architected memory model of the ISA (x86 -> TSO, ARMv7 -> weak). */
MemoryModel defaultModel(Isa isa);

/** General-purpose register width in bits (64 for x86-64, 32 ARMv7). */
unsigned registerBits(Isa isa);

} // namespace mtc

#endif // MTC_MCM_ISA_H
