/**
 * @file
 * Kinds of memory operations appearing in test programs.
 *
 * The paper's constrained-random tests contain loads and stores only
 * (Section 5); fences appear at loop boundaries. We additionally allow
 * in-body fences as an extension, which the ordering matrices treat as
 * full barriers.
 */

#ifndef MTC_MCM_OP_KIND_H
#define MTC_MCM_OP_KIND_H

#include <cstdint>
#include <string>

namespace mtc
{

/** Kind of a memory operation in a test program. */
enum class OpKind : std::uint8_t
{
    Load,
    Store,
    Fence,
};

/** Short mnemonic ("ld" / "st" / "fence"). */
inline std::string
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Load:
        return "ld";
      case OpKind::Store:
        return "st";
      case OpKind::Fence:
        return "fence";
    }
    return "?";
}

} // namespace mtc

#endif // MTC_MCM_OP_KIND_H
