#include "mcm/memory_model.h"

#include <algorithm>
#include <cctype>

#include "support/error.h"

namespace mtc
{

std::string
modelName(MemoryModel model)
{
    switch (model) {
      case MemoryModel::SC:
        return "SC";
      case MemoryModel::TSO:
        return "TSO";
      case MemoryModel::RMO:
        return "RMO";
    }
    return "?";
}

MemoryModel
parseModel(const std::string &text)
{
    std::string lower(text);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "sc")
        return MemoryModel::SC;
    if (lower == "tso")
        return MemoryModel::TSO;
    if (lower == "rmo" || lower == "weak")
        return MemoryModel::RMO;
    throw ConfigError("unknown memory model: " + text);
}

bool
programOrderRequired(MemoryModel model, OpKind first, OpKind second)
{
    // Fences order everything relative to themselves in every model.
    if (first == OpKind::Fence || second == OpKind::Fence)
        return true;

    switch (model) {
      case MemoryModel::SC:
        return true;
      case MemoryModel::TSO:
        // The only relaxation is store->load (store buffering).
        return !(first == OpKind::Store && second == OpKind::Load);
      case MemoryModel::RMO:
        return false;
    }
    return true;
}

bool
sameAddressOrderRequired(MemoryModel model, OpKind first, OpKind second)
{
    if (programOrderRequired(model, first, second))
        return true;

    // Per-location coherence holds in all supported models:
    //  st->st : writes to one location are serialized in program order;
    //  ld->st : a store may not be overtaken by a po-earlier load of
    //           the same address (the load would otherwise be able to
    //           read its own thread's future);
    //  ld->ld : reads of one location may not appear reordered (CoRR).
    // st->ld is intentionally absent: store forwarding lets a load
    // consume a po-earlier store before that store is globally visible
    // (paper footnote 4).
    if (first == OpKind::Store && second == OpKind::Store)
        return true;
    if (first == OpKind::Load && second == OpKind::Store)
        return true;
    if (first == OpKind::Load && second == OpKind::Load)
        return true;
    return false;
}

bool
atLeastAsWeak(MemoryModel weaker, MemoryModel stronger)
{
    auto rank = [](MemoryModel m) {
        switch (m) {
          case MemoryModel::SC:
            return 2;
          case MemoryModel::TSO:
            return 1;
          case MemoryModel::RMO:
            return 0;
        }
        return 0;
    };
    return rank(weaker) <= rank(stronger);
}

} // namespace mtc
