/**
 * @file
 * Out-of-process execution sandbox: a persistent pool of pre-forked
 * worker processes running campaign units over framed pipe IPC.
 *
 * The in-process engine (campaign.cc) contains *simulated* failures —
 * thrown errors, cooperative stalls — but an actual SIGSEGV,
 * std::bad_alloc, or runaway allocation inside an executor takes down
 * the whole campaign and every queued unit with it. Post-silicon
 * harnesses cannot afford that: the device under test genuinely
 * wedges and kills its harness (the paper's Section 6 bug-injected
 * platforms deadlock for real). The sandbox turns each unit into a
 * crashable transaction:
 *
 *  - workers are forked up front and reused across units; a request
 *    and its response are length+FNV-1a framed records
 *    (src/support/framing.h) over per-worker pipes;
 *  - a worker death — real fatal signal, nonzero exit, rlimit breach
 *    — is detected via broken pipe + waitpid, classified, reported to
 *    the client (which charges crash retries and the circuit
 *    breaker), and the worker is respawned;
 *  - a wedged worker that ignores cooperative cancellation is
 *    SIGKILLed by the parent once the hard per-dispatch deadline
 *    passes, so the watchdog's reclaim bound holds even against
 *    non-cooperative hangs.
 *
 * The pool is payload-agnostic: it moves byte vectors. Campaign
 * semantics (unit records, seeds, journaling) stay in the client
 * callbacks, which run in the parent — only WorkerFn runs in the
 * children.
 */

#ifndef MTC_HARNESS_SANDBOX_H
#define MTC_HARNESS_SANDBOX_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

#include "support/error.h"
#include "support/transport.h"

namespace mtc
{

/** A sandbox-infrastructure failure (fork, pipe, poll, or a worker
 * fleet dying faster than it completes units). Distinct from a worker
 * loss, which is contained and reported, not thrown. */
class SandboxError : public Error
{
  public:
    explicit SandboxError(const std::string &what_arg) : Error(what_arg)
    {}
};

/** Sandbox-wide knobs. */
struct SandboxConfig
{
    /** Worker processes forked up front. */
    unsigned workers = 1;

    /** Per-child RLIMIT_AS budget in MB; 0 = unlimited. Ignored (with
     * a warning) in sanitizer builds — see applySandboxLimits(). */
    std::uint64_t memLimitMb = 0;

    /** Per-child RLIMIT_CPU budget in seconds; 0 = unlimited. */
    std::uint64_t cpuLimitS = 0;

    /**
     * Hard wall-clock deadline per dispatched unit in milliseconds;
     * past it the parent SIGKILLs the worker. 0 disables. Clients set
     * this to 2 x testTimeoutMs x (retries + 1): the child's own
     * cooperative watchdog gets every chance to reclaim first, and
     * the SIGKILL only fires for hangs that ignore cancellation.
     */
    std::uint64_t hardDeadlineMs = 0;
};

/** Why a dispatched unit lost its worker. */
enum class WorkerLossKind : std::uint8_t
{
    Crash,     ///< fatal signal (SIGSEGV, SIGABRT, ...)
    CpuBudget, ///< SIGXCPU: RLIMIT_CPU soft limit hit
    OomBudget, ///< allocation failure under the memory budget
    ExitCode,  ///< worker exited with a nonzero status
    HardKill,  ///< parent SIGKILLed a wedged worker at the deadline
    Protocol   ///< response stream violated framing
};

/** One worker loss, classified for the client. */
struct WorkerLoss
{
    WorkerLossKind kind = WorkerLossKind::Crash;
    int signal = 0;   ///< terminating signal for Crash
    int exitCode = 0; ///< status for ExitCode

    /** One-line crash report the dying worker managed to emit from
     * its fatal-signal handler (signal, unit id, seed); empty when it
     * died without reporting (SIGKILL, rlimit hard cap). */
    std::string crashNote;

    std::string describe() const;
};

/** Identity of the worker executing a request, passed to WorkerFn so
 * clients can scope drills (e.g. arm --die-after only in the initial
 * fleet's first worker). */
struct WorkerEnv
{
    unsigned workerIndex = 0;

    /** 0 in the initial fleet; incremented per respawn of the slot. */
    unsigned generation = 0;
};

/**
 * Pre-forked worker pool. Construction forks the fleet; run()
 * dispatches units 0..n-1 in index order to idle workers and invokes
 * the parent-side callbacks as units complete, in completion order —
 * clients preserve determinism by writing results into per-unit slots
 * and aggregating in unit order afterwards.
 */
class SandboxPool
{
  public:
    /** Executes one request in a worker child; its return value is
     * the response payload. Exceptions escaping it terminate the
     * worker (std::bad_alloc with the OOM exit sentinel). */
    using WorkerFn = std::function<std::vector<std::uint8_t>(
        const std::vector<std::uint8_t> &request, const WorkerEnv &env)>;

    /** Produces the request payload for a unit, or nullopt when the
     * unit resolves without running (journal replay, tripped
     * breaker); runs in the parent at dispatch time. */
    using RequestFn = std::function<std::optional<
        std::vector<std::uint8_t>>(std::size_t unit)>;

    /** Receives a completed unit's response payload (parent side). */
    using ResultFn =
        std::function<void(std::size_t unit,
                           const std::vector<std::uint8_t> &payload)>;

    /** Receives a worker loss for a dispatched unit; return true to
     * retry the unit on a fresh worker, false to give up on it. */
    using LossFn =
        std::function<bool(std::size_t unit, const WorkerLoss &loss)>;

    /**
     * Fork the fleet. WARNING: fork duplicates only the calling
     * thread — construct the pool before spawning any worker threads
     * (the campaign's sandboxed mode never builds its thread pool or
     * watchdog in the parent for exactly this reason).
     *
     * @throws SandboxError if a worker cannot be forked.
     */
    SandboxPool(SandboxConfig cfg, WorkerFn worker);

    /** Shuts the fleet down: close request pipes (workers exit on
     * EOF), then SIGKILL any straggler after a short grace. */
    ~SandboxPool();

    SandboxPool(const SandboxPool &) = delete;
    SandboxPool &operator=(const SandboxPool &) = delete;

    /**
     * Dispatch units 0..@p unit_count-1 across the fleet.
     *
     * @throws SandboxError if the fleet keeps dying faster than it
     *         completes units (respawn-churn backstop), or on an
     *         infrastructure failure. Worker losses are NOT errors;
     *         they go to @p loss.
     */
    void run(std::size_t unit_count, const RequestFn &request,
             const ResultFn &result, const LossFn &loss);

    /** Workers respawned over the pool's lifetime (crash containment
     * events plus hard kills). */
    unsigned respawns() const { return respawnCount; }

  private:
    struct Worker
    {
        pid_t pid = -1;

        /** Framed request/response channel (parent side: sends
         * requests, receives responses) — the same Transport the
         * network fabric uses over sockets. */
        Transport link;

        int crashFd = -1; ///< parent reads crash reports (nonblocking)
        unsigned index = 0;
        unsigned generation = 0;
        bool busy = false;
        bool hardKilled = false;
        std::size_t unit = 0;
        std::chrono::steady_clock::time_point deadline{};
    };

    void spawnWorker(Worker &slot, unsigned index, unsigned generation);
    [[noreturn]] void workerMain(Transport link, const WorkerEnv &env);
    void respawnWorker(Worker &w);
    WorkerLoss reapLoss(Worker &w, bool torn);
    std::string drainCrashNote(int fd);

    SandboxConfig cfg;
    WorkerFn workerFn;
    std::vector<Worker> workers;
    unsigned respawnCount = 0;
    unsigned respawnCap = 0;
    void (*oldSigpipe)(int) = nullptr;
};

} // namespace mtc

#endif // MTC_HARNESS_SANDBOX_H
