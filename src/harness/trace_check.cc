#include "harness/trace_check.h"

#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "core/codesize.h"
#include "core/instr_plan.h"
#include "core/load_analysis.h"
#include "core/signature_codec.h"
#include "harness/campaign_journal.h"
#include "harness/dist_campaign.h"
#include "harness/validation_flow.h"
#include "support/framing.h"
#include "support/log.h"
#include "support/rng.h"
#include "testgen/generator.h"

namespace mtc
{

namespace
{

/** Strict mode throws on the first fault; degraded mode collects. */
struct FaultSink
{
    bool strict;
    std::vector<TraceFault> &faults;

    void
    operator()(TraceFaultKind kind, const std::string &detail) const
    {
        if (strict)
            throw TraceError(kind, detail);
        faults.push_back(TraceFault{kind, detail});
    }
};

/** Chained FNV over the sorted (words, count) pairs — must mirror the
 * signatureSetDigest fold in ValidationFlow::runTest exactly. */
std::uint64_t
streamDigest(const std::vector<SignatureCount> &stream)
{
    std::uint64_t digest = 0xcbf29ce484222325ull;
    for (const SignatureCount &entry : stream) {
        digest = fnv1a64(entry.signature.words.data(),
                         entry.signature.words.size() *
                             sizeof(std::uint64_t),
                         digest);
        digest =
            fnv1a64(&entry.iterations, sizeof(entry.iterations), digest);
    }
    return digest;
}

/** The generation seed of the unit's FINAL attempt: the plan's own
 * seed when it succeeded first try, otherwise the retriesUsed-th pair
 * drawn from the unit's private retry stream — the same draws
 * runPlannedTest made on the producer. */
std::uint64_t
finalAttemptGenSeed(const TestPlan &plan, unsigned retries_used)
{
    std::uint64_t gen_seed = plan.genSeed;
    Rng retry_seeder(plan.retrySeed);
    for (unsigned i = 0; i < retries_used; ++i) {
        gen_seed = retry_seeder();
        (void)retry_seeder(); // the attempt's flow-seed draw
    }
    return gen_seed;
}

/** Where a recorded unit disagreed with its recomputation (empty
 * optional = verified). */
std::optional<std::string>
verifyOkUnit(const TestConfig &cfg, const FlowConfig &flow,
             const TestPlan &plan, const UnitRecord &unit)
{
    const FlowResult &rec = unit.outcome.result;
    const auto field = [&](const char *name) {
        return "unit " + std::to_string(unit.testIndex) + " of " +
            cfg.name() + ": recorded " + name +
            " disagrees with its recomputation";
    };

    if (rec.signatureStream.size() != rec.uniqueSignatures) {
        return "unit " + std::to_string(unit.testIndex) + " of " +
            cfg.name() + " claims " +
            std::to_string(rec.uniqueSignatures) +
            " unique signatures but carries " +
            std::to_string(rec.signatureStream.size()) +
            " stream entries (dumped from a streamless journal "
            "replay?)";
    }
    if (streamDigest(rec.signatureStream) != rec.signatureSetDigest)
        return field("signature-set digest");

    const TestProgram program =
        generateTest(cfg, finalAttemptGenSeed(plan, unit.outcome.retriesUsed));
    LoadValueAnalysis analysis(program, flow.analysis);
    InstrumentationPlan iplan(program, analysis);
    SignatureCodec codec(program, analysis, iplan);

    const IntrusivenessReport intrusive = intrusiveness(program, iplan);
    const CodeSizeReport code = codeSize(program, analysis, iplan);
    if (intrusive.signatureBytes != rec.intrusive.signatureBytes ||
        intrusive.normalizedUnrelated() !=
            rec.intrusive.normalizedUnrelated())
        return field("intrusiveness metrics");
    if (code.originalBytes != rec.code.originalBytes ||
        code.instrumentedBytes != rec.code.instrumentedBytes)
        return field("code-size metrics");

    const MemoryModel model =
        flow.coherent ? flow.coherent->model : flow.exec.model;
    FlowResult chk;
    PhaseProfiler prof(false);
    std::vector<bool> verdicts;
    std::vector<std::size_t> decoded_idx;
    checkSignatureStream(program, codec, model, flow,
                         rec.signatureStream, prof, chk, verdicts,
                         decoded_idx);

    // The raw cyclic count splits into confirmed XOR transient on the
    // producer (all-or-nothing confirmation), and violatingSignatures
    // was zeroed exactly when the split went transient — both
    // invariants fold into these two equalities.
    if (rec.violatingSignatures + rec.fault.transientViolations !=
        chk.violatingSignatures)
        return field("violating-signature count");
    if (rec.fault.confirmedViolations != rec.violatingSignatures)
        return field("confirmed-violation split");

    if (chk.fault.decodedSignatures != rec.fault.decodedSignatures)
        return field("decoded-signature count");
    if (chk.fault.quarantinedCount() != rec.fault.quarantinedCount() ||
        chk.fault.quarantinedIterations !=
            rec.fault.quarantinedIterations)
        return field("quarantine ledger");

    const CollectiveStats &c = chk.collective;
    const CollectiveStats &rc = rec.collective;
    if (c.graphsChecked != rc.graphsChecked ||
        c.violations != rc.violations ||
        c.completeSorts != rc.completeSorts ||
        c.noResortNeeded != rc.noResortNeeded ||
        c.incrementalResorts != rc.incrementalResorts ||
        c.verticesProcessed != rc.verticesProcessed ||
        c.edgesProcessed != rc.edgesProcessed ||
        c.affectedFraction.sum() != rc.affectedFraction.sum() ||
        c.affectedFraction.count() != rc.affectedFraction.count())
        return field("collective checker stats");
    if (flow.runConventional) {
        const ConventionalStats &v = chk.conventional;
        const ConventionalStats &rv = rec.conventional;
        if (v.graphsChecked != rv.graphsChecked ||
            v.violations != rv.violations ||
            v.verticesProcessed != rv.verticesProcessed ||
            v.edgesProcessed != rv.edgesProcessed)
            return field("conventional checker stats");
    }
    return std::nullopt;
}

/** Checkpoint notes carry their fault kind as a stable name prefix so
 * a resumed quarantine re-classifies identically. */
std::string
checkpointNote(TraceFaultKind kind, const std::string &detail)
{
    return std::string(traceFaultName(kind)) + ": " + detail;
}

TraceFaultKind
checkpointNoteKind(const std::string &note)
{
    for (const TraceFaultKind kind :
         {TraceFaultKind::Truncated, TraceFaultKind::Corrupt,
          TraceFaultKind::VersionSkew,
          TraceFaultKind::FingerprintMismatch}) {
        const std::string prefix =
            std::string(traceFaultName(kind)) + ": ";
        if (note.compare(0, prefix.size(), prefix) == 0)
            return kind;
    }
    return TraceFaultKind::Corrupt;
}

} // anonymous namespace

void
writeCampaignTrace(
    const std::string &path, const std::vector<TestConfig> &configs,
    const CampaignConfig &campaign,
    const std::vector<std::vector<TestPlan>> &plans,
    const std::vector<std::vector<TestOutcome>> &outcomes)
{
    CampaignSpec spec;
    spec.configs = configs;
    spec.campaign = campaign;

    const CampaignJournal::Identity identity =
        campaignIdentity(configs, campaign);
    TraceHeader header;
    header.identityDigest = identity.digest;
    header.description = identity.description;
    header.spec = encodeCampaignSpec(spec);

    TraceWriter writer(path, header);
    for (std::size_t c = 0; c < configs.size(); ++c) {
        for (std::size_t t = 0; t < outcomes[c].size(); ++t) {
            const TestOutcome &slot = outcomes[c][t];
            if (slot.ok && slot.result.uniqueSignatures &&
                slot.result.signatureStream.size() !=
                    slot.result.uniqueSignatures) {
                throw ConfigError(
                    "trace dump: test " + std::to_string(t) + " of " +
                    configs[c].name() +
                    " carries no signature stream — its outcome was "
                    "replayed from a journal written without stream "
                    "retention; re-run the campaign (or resume with "
                    "the dump flag set from the start) to dump a "
                    "checkable trace");
            }
            UnitRecord record;
            record.configName = configs[c].name();
            record.testIndex = static_cast<std::uint32_t>(t);
            record.genSeed = plans[c][t].genSeed;
            record.flowSeed = plans[c][t].flowSeed;
            record.outcome = slot;
            record.outcome.result.executions.clear();
            writer.append(kTraceUnitTag, encodeUnitRecord(record));
        }
    }
    writer.sync();
}

TraceCheckReport
checkTrace(const TraceCheckOptions &options)
{
    TraceCheckReport report;
    const FaultSink fault{options.strict, report.faults};
    if (options.resume && options.checkpointPath.empty())
        throw ConfigError("trace check: resume needs a checkpoint path");

    // --- Ingest + header handshake (fatal faults throw in any mode) ---
    const TraceFile trace = readTraceFile(options.tracePath);
    report.identityDescription = trace.header.description;
    report.tornBytesDropped = trace.droppedBytes;
    report.unknownRecordsSkipped = trace.unknownSkipped;
    if (trace.droppedBytes) {
        fault(TraceFaultKind::Truncated,
              "torn tail: " + std::to_string(trace.droppedBytes) +
                  " bytes dropped after the last intact record; "
                  "checking the longest intact prefix");
    }
    if (trace.malformedRecords) {
        fault(TraceFaultKind::Corrupt,
              std::to_string(trace.malformedRecords) +
                  " empty (kind-less) record payloads skipped");
    }

    CampaignSpec spec;
    try {
        spec = decodeCampaignSpec(trace.header.spec);
    } catch (const Error &err) {
        throw TraceError(TraceFaultKind::Corrupt,
                         std::string("trace header spec: ") +
                             err.what());
    }
    const CampaignJournal::Identity identity =
        campaignIdentity(spec.configs, spec.campaign);
    if (identity.digest != trace.header.identityDigest) {
        throw TraceError(
            TraceFaultKind::FingerprintMismatch,
            "trace header fingerprint does not match the campaign "
            "identity re-derived from its own spec (" +
                identity.description + ") — edited or mixed-up trace");
    }

    // --- Re-derive the deterministic plan from the spec --------------
    const std::vector<TestConfig> &configs = spec.configs;
    struct CfgState
    {
        FlowConfig flow;
        std::vector<TestPlan> plans;
        bool setupOk = false;
        std::string error;
    };
    std::vector<CfgState> states(configs.size());
    std::map<std::string, std::size_t> cfg_index;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        cfg_index[configs[c].name()] = c;
        try {
            states[c].flow = flowTemplate(configs[c], spec.campaign);
            states[c].plans = deriveTestPlans(configs[c], spec.campaign);
            states[c].setupOk = true;
        } catch (const Error &err) {
            states[c].error = err.what();
            continue;
        }
        // Operational checker knobs are the consumer's, not the
        // producer's: results are bit-identical at any setting.
        states[c].flow.threads = options.threads;
        states[c].flow.streamCheck = options.streamCheck;
        states[c].flow.streamWindow = options.streamWindow;
        states[c].flow.keepSignatures = false;
        states[c].flow.keepExecutions = false;
        states[c].flow.cancel = nullptr;
    }

    // --- Collect unit records (first writer per key wins) ------------
    struct SlotRecord
    {
        UnitRecord unit;
        std::uint64_t bodyDigest = 0;
    };
    std::vector<std::vector<std::optional<SlotRecord>>> slots(
        configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c)
        slots[c].resize(states[c].plans.size());

    for (const TraceRecord &rec : trace.records) {
        if (rec.kind != kTraceUnitTag) {
            ++report.quarantinedRecords;
            fault(TraceFaultKind::Corrupt,
                  "checkpoint record inside a campaign trace");
            continue;
        }
        ++report.unitsInTrace;
        UnitRecord unit;
        try {
            unit = decodeUnitRecord(rec.body);
        } catch (const JournalError &err) {
            ++report.quarantinedRecords;
            fault(TraceFaultKind::Corrupt,
                  std::string("undecodable unit record: ") + err.what());
            continue;
        }
        const auto it = cfg_index.find(unit.configName);
        if (it == cfg_index.end()) {
            ++report.quarantinedRecords;
            fault(TraceFaultKind::Corrupt,
                  "unit record names a config absent from the spec: " +
                      unit.configName);
            continue;
        }
        const std::size_t c = it->second;
        if (!states[c].setupOk ||
            unit.testIndex >= states[c].plans.size()) {
            ++report.quarantinedRecords;
            fault(TraceFaultKind::Corrupt,
                  "unit record index " +
                      std::to_string(unit.testIndex) + " of " +
                      unit.configName + " is outside the spec's plan");
            continue;
        }
        const TestPlan &plan = states[c].plans[unit.testIndex];
        if (unit.genSeed != plan.genSeed ||
            unit.flowSeed != plan.flowSeed) {
            ++report.quarantinedRecords;
            fault(TraceFaultKind::FingerprintMismatch,
                  "unit " + std::to_string(unit.testIndex) + " of " +
                      unit.configName +
                      " carries different seeds than the spec "
                      "derives — record from another campaign");
            continue;
        }
        std::optional<SlotRecord> &slot = slots[c][unit.testIndex];
        if (slot) {
            ++report.duplicateUnits;
            fault(TraceFaultKind::Corrupt,
                  "duplicate record for unit " +
                      std::to_string(unit.testIndex) + " of " +
                      unit.configName + " (first record kept)");
            continue;
        }
        SlotRecord sr;
        sr.unit = std::move(unit);
        sr.bodyDigest = fnv1a64(rec.body.data(), rec.body.size());
        slot = std::move(sr);
    }

    // --- Checkpoint: load replayable verdicts, open the writer -------
    std::map<std::pair<std::string, std::uint32_t>,
             TraceCheckpointRecord>
        checkpoints;
    std::unique_ptr<TraceWriter> ckpt_writer;
    if (!options.checkpointPath.empty()) {
        bool append = false;
        if (options.resume) {
            try {
                const TraceFile ck =
                    readTraceFile(options.checkpointPath);
                if (ck.header.identityDigest !=
                    trace.header.identityDigest) {
                    warn("checkpoint " + options.checkpointPath +
                         " belongs to another trace; rebuilding it");
                } else {
                    for (const TraceRecord &rec : ck.records) {
                        if (rec.kind != kTraceCheckpointTag)
                            continue;
                        try {
                            TraceCheckpointRecord cp =
                                decodeTraceCheckpoint(rec.body);
                            checkpoints[{cp.configName,
                                         cp.testIndex}] = cp;
                        } catch (const TraceError &err) {
                            // An unreadable checkpoint entry only
                            // costs its unit a re-check — but say so,
                            // or a codec regression here degrades
                            // every resume to a silent full re-run.
                            warn(std::string("checkpoint entry "
                                             "undecodable (") +
                                 err.what() + "); re-checking its unit");
                        }
                    }
                    truncateToValidPrefix(
                        options.checkpointPath,
                        readJournal(options.checkpointPath));
                    append = true;
                }
            } catch (const TraceError &err) {
                // The checkpoint is our own scratch state, not the
                // evidence under audit: a bad one is rebuilt, never
                // fatal (even in strict mode).
                warn("checkpoint " + options.checkpointPath +
                     " unreadable (" + err.what() +
                     "); rebuilding it");
            }
        }
        if (append) {
            ckpt_writer = std::make_unique<TraceWriter>(
                options.checkpointPath);
        } else {
            checkpoints.clear();
            TraceHeader ck_header;
            ck_header.identityDigest = trace.header.identityDigest;
            ck_header.description =
                "mtc_check checkpoint for " + options.tracePath;
            ckpt_writer = std::make_unique<TraceWriter>(
                options.checkpointPath, ck_header);
        }
    }

    // --- Verify every unit in deterministic (config, test) order -----
    std::vector<std::vector<TestOutcome>> outcomes(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        outcomes[c].resize(states[c].plans.size());
        for (TestOutcome &slot : outcomes[c]) {
            slot.status = TestStatus::Skipped;
            slot.ok = false;
        }
    }

    for (std::size_t c = 0; c < configs.size(); ++c) {
        for (std::size_t t = 0; t < slots[c].size(); ++t) {
            if (!slots[c][t]) {
                ++report.missingUnits;
                fault(TraceFaultKind::Truncated,
                      "unit " + std::to_string(t) + " of " +
                          configs[c].name() +
                          " is missing from the trace (torn or "
                          "dropped record)");
                continue;
            }
            const SlotRecord &sr = *slots[c][t];

            const auto ck = checkpoints.find(
                {configs[c].name(), static_cast<std::uint32_t>(t)});
            if (ck != checkpoints.end() &&
                ck->second.payloadDigest == sr.bodyDigest) {
                ++report.unitsReplayed;
                if (ck->second.quarantined) {
                    ++report.quarantinedRecords;
                    fault(checkpointNoteKind(ck->second.note),
                          ck->second.note + " (checkpoint replay)");
                } else {
                    outcomes[c][t] = sr.unit.outcome;
                }
                continue;
            }

            TraceCheckpointRecord cp;
            cp.configName = configs[c].name();
            cp.testIndex = static_cast<std::uint32_t>(t);
            cp.payloadDigest = sr.bodyDigest;

            if (!sr.unit.outcome.ok) {
                // Failed/Hung/Skipped outcomes carry no stream; the
                // recorded verdict is the evidence, adopted verbatim.
                outcomes[c][t] = sr.unit.outcome;
                ++report.unitsAdopted;
            } else if (const std::optional<std::string> mismatch =
                           verifyOkUnit(configs[c], states[c].flow,
                                        states[c].plans[t], sr.unit)) {
                ++report.quarantinedRecords;
                cp.quarantined = 1;
                cp.note = checkpointNote(
                    TraceFaultKind::FingerprintMismatch, *mismatch);
                if (ckpt_writer)
                    ckpt_writer->append(kTraceCheckpointTag,
                                        encodeTraceCheckpoint(cp));
                fault(TraceFaultKind::FingerprintMismatch, *mismatch);
                continue;
            } else {
                outcomes[c][t] = sr.unit.outcome;
                ++report.unitsVerified;
            }
            if (ckpt_writer)
                ckpt_writer->append(kTraceCheckpointTag,
                                    encodeTraceCheckpoint(cp));
        }
    }
    if (ckpt_writer)
        ckpt_writer->sync();

    // --- Summaries: the same fold the producer printed ---------------
    report.summaries.reserve(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        if (!states[c].setupOk) {
            ConfigSummary degraded;
            degraded.cfg = configs[c];
            degraded.degraded = true;
            degraded.error = states[c].error;
            report.summaries.push_back(std::move(degraded));
            continue;
        }
        report.summaries.push_back(summarizeConfig(
            configs[c], outcomes[c], spec.campaign.errorBudget));
    }
    return report;
}

} // namespace mtc
