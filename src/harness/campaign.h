/**
 * @file
 * Campaign runner: the paper's evaluation grid.
 *
 * A campaign runs a batch of constrained-random tests for each test
 * configuration (Table 2 / Figure 8 x-axis) on a chosen platform
 * variant and aggregates per-configuration metrics for every figure.
 * Scale knobs (iterations, tests per configuration) default to values
 * that finish in seconds per configuration; the environment variables
 * MTC_ITERATIONS and MTC_TESTS override them for paper-scale runs
 * (see EXPERIMENTS.md).
 */

#ifndef MTC_HARNESS_CAMPAIGN_H
#define MTC_HARNESS_CAMPAIGN_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/validation_flow.h"
#include "support/fault_transport.h"
#include "testgen/test_config.h"

namespace mtc
{

struct FabricStats;

/** Platform variant of a campaign (Figure 8 bar families). */
enum class PlatformVariant : std::uint8_t
{
    BareMetal, ///< paper's bare-metal environment
    Linux,     ///< paper's OS-interference runs
};

/** Where a campaign's (config, test) units execute. */
enum class ExecutionMode : std::uint8_t
{
    /** Units run inside the campaign process (threads per
     * CampaignConfig::threads). Fast, but a real crash in any unit
     * kills the whole campaign. */
    InProcess,

    /** Units run in a pool of pre-forked sandbox worker processes
     * (src/harness/sandbox.h); `threads` sets the worker count. A
     * worker death is contained, classified, charged, and respawned.
     * Summaries stay bit-identical to InProcess at any worker
     * count. */
    Sandboxed,

    /** Units run on a fleet of worker processes connected over TCP
     * (src/dist/coordinator.h): `distWorkers` loopback workers are
     * forked locally, and external `mtc_worker` processes may attach
     * to the same port. A lost worker's leased units are reassigned
     * and re-executed from their pre-derived seeds, so summaries stay
     * bit-identical to InProcess at any fleet size even across
     * mid-batch worker deaths. */
    Distributed,
};

/** Campaign-wide knobs. */
struct CampaignConfig
{
    std::uint64_t iterations = 2048;
    unsigned testsPerConfig = 3;
    std::uint64_t seed = 2017;
    PlatformVariant variant = PlatformVariant::BareMetal;
    bool runConventional = true;

    /** Readout-path fault injection applied to every test (all rates
     * 0 keeps the campaign bit-identical to the fault-free runner). */
    FaultConfig fault;

    /** Per-test graceful-degradation knobs, forwarded to the flow. */
    RecoveryConfig recovery;

    /** How many times a test that dies on an internal error is
     * regenerated-and-retried (with fresh seeds) before the config
     * marks it failed and moves on. */
    unsigned testRetries = 1;

    /**
     * Worker threads the campaign fans its (config, test) units
     * across. 1 (default) runs the classic serial campaign; 0 resolves
     * to the hardware concurrency. Summaries are bit-identical at any
     * value: every test's seeds are pre-derived from the canonical
     * serial sequence, each unit writes its own result slot, and
     * per-config aggregation folds the slots in test order.
     */
    unsigned threads = 1;

    /**
     * Lockstep batch width forwarded to every test's flow (see
     * FlowConfig::batch): iterations dispatched per batched-engine
     * call. 0 (default) lets the flow pick; 1 is scalar stepping.
     * Operational knob — summaries are bit-identical at any width, so
     * it is excluded from the campaign identity and a journal written
     * at one width resumes at another.
     */
    std::uint32_t batch = 0;

    /** Collective-checker shard size forwarded to every test's flow
     * (see FlowConfig::shardSize). 0 = unsharded. */
    std::size_t shardSize = 0;

    /** Streaming decode→check pipeline forwarded to every test's flow
     * (see FlowConfig::streamCheck). false runs the barrier baseline.
     * Operational knob — bit-identical summaries either way, so it is
     * excluded from the campaign identity like `threads`/`batch`. */
    bool streamCheck = true;

    /** Bounded decode→check window forwarded to every test's flow
     * (see FlowConfig::streamWindow); 0 = unbounded. Operational. */
    std::size_t streamWindow = 64;

    /**
     * Write-ahead journal path (src/support/journal.h). Every
     * completed (config, test) unit is logged durably; empty (the
     * default) journals nothing. See `resume`.
     */
    std::string journalPath;

    /**
     * Offline-trace dump path (src/core/trace_format.h): after the
     * campaign completes, every (config, test) unit record — including
     * its sorted unique signature stream — is written in deterministic
     * (config, test) order, in every execution mode (distributed
     * workers ship their streams back inside unit records and the
     * coordinator-side slots are walked in unit order). `mtc_check`
     * re-runs the checking stage over the file and reproduces the
     * campaign summary byte-identically. Empty (the default) dumps
     * nothing. Operational knob — excluded from the campaign identity;
     * the trace records which campaign it belongs to, not the other
     * way around.
     */
    std::string dumpTracePath;

    /** Keep each unit's sorted signature stream in its FlowResult
     * (see FlowConfig::keepSignatures). Implied by `dumpTracePath`;
     * exposed separately so a caller can retain streams without
     * writing a file. Operational knob. */
    bool keepSignatureStreams = false;

    /**
     * Resume from an existing journal at `journalPath`: units already
     * logged are replayed from their records instead of re-run, so a
     * SIGKILLed campaign continues where it stopped — and, because
     * every per-test seed is pre-derived from the canonical serial
     * sequence, the resumed summary is bit-identical (deterministic
     * fields; wall-clock ms fields replay the journaled values) to an
     * uninterrupted run at any thread count. A journal written by a
     * different campaign (seed, scale, configs, platform or fault
     * knobs differ) is rejected with ConfigError.
     */
    bool resume = false;

    /**
     * Watchdog deadline per test attempt in milliseconds; 0 (default)
     * disables the watchdog. An attempt exceeding the deadline is
     * cooperatively cancelled, recorded as TestStatus::Hung, and
     * retried under the normal retry budget.
     */
    std::uint64_t testTimeoutMs = 0;

    /**
     * Per-config circuit breaker: after this many error events in one
     * configuration — hung attempts, failed tests, platform crashes,
     * quarantined signatures — the config trips, its remaining units
     * are skipped, and the summary reports it tripped/degraded
     * instead of letting a poisoned config burn the campaign's
     * wall-clock. 0 (default) never trips. At threads > 1 the trip
     * point depends on completion order; breaker verdicts are
     * advisory, not part of the bit-identical summary contract.
     */
    unsigned errorBudget = 0;

    /**
     * Liveness drill forwarded to the platform: every run wedges
     * after this many scheduler steps (see
     * ExecutorConfig::stallAfterSteps). 0 = off. Only meaningful with
     * `testTimeoutMs` set — an unwatched stalled run never returns.
     */
    std::uint64_t stallAfterSteps = 0;

    /** Make the stall drill ignore cancellation (see
     * ExecutorConfig::stallIgnoresCancel): only the sandbox's
     * hard-deadline SIGKILL can then reclaim the worker. */
    bool stallUncooperative = false;

    /** Where units execute; see ExecutionMode. Operational knob: a
     * journal written in one mode resumes in the other. */
    ExecutionMode mode = ExecutionMode::InProcess;

    /** Sandboxed mode: per-worker RLIMIT_AS budget in MB (0 =
     * unlimited; ignored with a warning in sanitizer builds). */
    std::uint64_t sandboxMemMb = 0;

    /** Sandboxed mode: per-worker RLIMIT_CPU budget in seconds
     * (0 = unlimited). */
    std::uint64_t sandboxCpuS = 0;

    /** Hard-crash drill forwarded to the platform (see
     * ExecutorConfig::dieAfterRuns): the Nth run raises a real fatal
     * signal. In sandboxed mode only the initial fleet's first worker
     * arms it, so containment is observable exactly once. */
    std::uint64_t dieAfterRuns = 0;

    /** Signal the die drill raises (default 11 = SIGSEGV). */
    int dieSignal = 11;

    /** Allocation-bomb drill forwarded to the platform (see
     * ExecutorConfig::leakAfterRuns); sandbox-gated like
     * dieAfterRuns. */
    std::uint64_t leakAfterRuns = 0;

    /** Distributed mode: loopback workers forked by the campaign
     * itself. 0 forks none — the coordinator then waits for external
     * `mtc_worker` processes to attach. */
    unsigned distWorkers = 2;

    /** Distributed mode: coordinator TCP port; 0 = ephemeral. */
    std::uint16_t distPort = 0;

    /** Distributed mode: units per lease (see FabricConfig). */
    unsigned distBatch = 2;

    /** Distributed mode: open leases per worker (backpressure). */
    unsigned distMaxInFlight = 2;

    /** Distributed mode: heartbeat liveness timeout; 0 disables. */
    std::uint64_t distHeartbeatTimeoutMs = 10000;

    /** Distributed mode: lease expiry; 0 disables. An expired lease's
     * units are reassigned while the slow worker stays connected. */
    std::uint64_t distLeaseTimeoutMs = 0;

    /** Distributed mode: write the coordinator's bound port (decimal,
     * one line) to this file once listening — how scripts learn an
     * ephemeral port. Empty writes nothing. */
    std::string distPortFile;

    /** Failure drill, distributed mode: loopback worker 0 _exit()s
     * abruptly after sending this many results — the worker-dies-
     * mid-batch scenario, whose leased units must be reassigned with
     * a bit-identical summary. 0 = off. */
    std::uint64_t distDrillExitAfter = 0;

    /** Distributed mode: path to the pre-shared fabric key file (see
     * loadFabricKey). Empty = keyless loopback fabric. When set, the
     * coordinator demands the challenge/response handshake, loopback
     * workers authenticate with the same key, and all post-handshake
     * frames carry MACs + sequence numbers. Operational knob: not
     * part of the campaign identity or the shipped spec. */
    std::string distKeyFile;

    /** Distributed mode: fraction of units re-executed by a second
     * worker and cross-compared (Byzantine audit; see
     * Coordinator::AuditHooks). 0 disables. Operational knob — the
     * merged summary is bit-identical at any rate. */
    double distAuditRate = 0.0;

    /** Distributed mode: seeded network faults injected on every
     * fabric connection, both coordinator- and loopback-worker-side
     * (chaos drills); inert when no rate is set. Operational knob. */
    NetFaultConfig distNetFault;

    /** Failure drill, distributed mode: the LAST loopback worker
     * silently corrupts every result it returns — decodable,
     * plausible, wrong. Only a Byzantine audit (distAuditRate > 0)
     * can catch and quarantine it. Needs distWorkers >= 2 so an
     * honest worker exists to audit against. */
    bool distDrillCorrupt = false;

    /** Distributed mode: when non-null, the coordinator's final
     * FabricStats (including the Byzantine-audit block) are copied
     * here after the run — how tools report quarantines without the
     * campaign layer growing a reporting dependency. Not owned. */
    FabricStats *distStatsOut = nullptr;

    /**
     * Apply MTC_ITERATIONS / MTC_TESTS / MTC_SEED / MTC_THREADS /
     * MTC_BATCH / MTC_SHARD_SIZE / MTC_STREAM_WINDOW / MTC_JOURNAL /
     * MTC_TEST_TIMEOUT_MS / MTC_SANDBOX / MTC_SANDBOX_MEM_MB /
     * MTC_SANDBOX_CPU_S overrides (MTC_THREADS=0 means "use every
     * hardware thread"; MTC_BATCH=0 means "flow default";
     * MTC_SHARD_SIZE=0 means unsharded; MTC_STREAM_WINDOW=0 means an
     * unbounded decode→check window; MTC_TEST_TIMEOUT_MS=0 means
     * no watchdog; MTC_SANDBOX=0/1 selects in-process/sandboxed).
     *
     * Fabric overrides: MTC_FABRIC_KEY_FILE (key path; the key itself
     * never transits argv or the environment), MTC_AUDIT_RATE (a
     * fraction in [0,1]), and the chaos knobs MTC_NET_FAULT_DROP /
     * _DUP / _CORRUPT / _DELAY / _REORDER / _DRIP / _DISCONNECT
     * (fractions applied to both directions), MTC_NET_FAULT_DELAY_MS
     * and MTC_NET_FAULT_SEED (counts).
     *
     * Offline checking: MTC_DUMP_TRACE (trace file path; see
     * `dumpTracePath`).
     *
     * @throws ConfigError if a set variable is non-numeric, or zero
     *         where zero is meaningless (iterations, tests), or empty
     *         where text is required (MTC_JOURNAL, MTC_DUMP_TRACE,
     *         MTC_FABRIC_KEY_FILE), or outside [0,1] where a rate is
     *         required.
     */
    static CampaignConfig fromEnv(CampaignConfig defaults);
    static CampaignConfig fromEnv();
};

/** Terminal status of one (config, test) unit. */
enum class TestStatus : std::uint8_t
{
    Ok = 0,     ///< flow completed (possibly after retries)
    Failed = 1, ///< abandoned after the retry budget
    Hung = 2,   ///< last attempt reclaimed by the watchdog
    Skipped = 3 ///< never ran: the config's circuit breaker tripped
};

/**
 * One (config, test) unit's result slot — the campaign's unit of
 * parallel work, of journaling, and of resume: exactly this struct
 * (minus FlowResult::executions) round-trips through a journal
 * UnitRecord.
 */
struct TestOutcome
{
    FlowResult result;
    TestStatus status = TestStatus::Failed;
    bool ok = false;
    unsigned retriesUsed = 0;

    /** Attempts reclaimed by the watchdog (includes attempts whose
     * retry then succeeded). */
    unsigned hungAttempts = 0;
};

/** Aggregated per-configuration metrics (means over tests). */
struct ConfigSummary
{
    TestConfig cfg;
    unsigned tests = 0;

    double avgUniqueSignatures = 0.0;
    double avgSignatureBytes = 0.0;
    double avgUnrelatedAccesses = 0.0; ///< Figure 11 y-axis
    double avgCodeRatio = 0.0;         ///< Figure 12
    double avgOriginalKB = 0.0;
    double avgInstrumentedKB = 0.0;

    double collectiveMs = 0.0;   ///< summed over tests
    double conventionalMs = 0.0; ///< summed over tests

    std::uint64_t collectiveWork = 0;   ///< vertices+edges processed
    std::uint64_t conventionalWork = 0;

    /** Figure 14 classification fractions. */
    double fracComplete = 0.0;
    double fracNoResort = 0.0;
    double fracIncremental = 0.0;
    double avgAffectedFraction = 0.0;

    /** Raw collective-checker classification totals (the fractions
     * above are these normalized by graphs checked); the scaling
     * bench reads the complete-sort count to measure the per-shard
     * extra-sort tax directly. */
    std::uint64_t collectiveGraphs = 0;
    std::uint64_t collectiveCompleteSorts = 0;

    /** Figure 10 components (means of per-test overheads). */
    double avgComputationOverhead = 0.0;
    double avgSortingOverhead = 0.0;

    std::uint64_t violations = 0;

    /** Fault-tolerance aggregates (all zero on a clean campaign). */
    InjectionCounts injected;               ///< injector ground truth
    std::uint64_t quarantinedSignatures = 0;
    std::uint64_t quarantinedIterations = 0;
    std::uint64_t confirmedViolations = 0;
    std::uint64_t transientViolations = 0;  ///< unreproduced, reclassified
    unsigned crashRetries = 0;
    unsigned testRetriesUsed = 0;
    unsigned failedTests = 0; ///< tests abandoned after retry budget
    unsigned hungTests = 0;   ///< tests whose final attempt hung
    unsigned hungAttempts = 0; ///< watchdog reclaims, incl. retried-ok
    unsigned skippedTests = 0; ///< skipped after the breaker tripped
    unsigned errorEvents = 0;  ///< breaker accounting for this config
    bool tripped = false;      ///< circuit breaker opened mid-config

    /** The configuration did not run to plan. Set with an empty
     * stats block when setup failed outright (runCampaign substitutes
     * this degraded summary instead of letting one poisoned config
     * kill the campaign), and set alongside the partial stats when
     * the circuit breaker tripped (`tripped` distinguishes the two);
     * `error` says which and why. */
    bool degraded = false;
    std::string error;

    /** Normalized collective / conventional sorting time (Fig. 9). */
    double
    speedupRatio() const
    {
        return conventionalMs > 0.0 ? collectiveMs / conventionalMs
                                    : 0.0;
    }

    /** Same ratio on work counters (host-independent). */
    double
    workRatio() const
    {
        return conventionalWork
            ? static_cast<double>(collectiveWork) / conventionalWork
            : 0.0;
    }
};

/**
 * Strictly parse a counting environment override.
 *
 * Used by CampaignConfig::fromEnv and by the bench binaries' private
 * scale knobs (MTC_BUG_TESTS, MTC_KM_RUNS, ...) so that a garbled
 * value fails fast with the variable's name instead of silently
 * running zero iterations.
 *
 * @throws ConfigError on empty/non-numeric/signed/overflowing text,
 *         or on zero unless @p allow_zero.
 */
std::uint64_t parseEnvCount(const char *name, const char *text,
                            bool allow_zero = false);

/**
 * Strictly parse a fractional environment override: a decimal in
 * [0, 1]. Same philosophy as parseEnvCount — MTC_AUDIT_RATE=lots must
 * fail fast, not silently audit nothing.
 *
 * @throws ConfigError on empty/non-numeric/out-of-range text.
 */
double parseEnvRate(const char *name, const char *text);

/**
 * Apply the MTC_NET_FAULT_* chaos overrides (see
 * CampaignConfig::fromEnv) on top of @p defaults. Shared by fromEnv
 * and by mtc_worker, which has no CampaignConfig of its own.
 *
 * @throws ConfigError on malformed values, like parseEnvRate.
 */
NetFaultConfig netFaultFromEnv(NetFaultConfig defaults = {});

/** Platform configuration a campaign uses for @p cfg. */
ExecutorConfig platformFor(const TestConfig &cfg, PlatformVariant variant);

/**
 * Fold one configuration's outcome slots (strictly in test order) into
 * its ConfigSummary, including the circuit-breaker verdict derived
 * from the slots' own error events against @p error_budget. Shared by
 * the inline campaign and the offline trace checker (mtc_check), so a
 * replayed outcome stream summarizes byte-identically to the run that
 * recorded it.
 */
ConfigSummary summarizeConfig(const TestConfig &cfg,
                              const std::vector<TestOutcome> &outcomes,
                              unsigned error_budget);

/** Run one configuration's batch of tests and aggregate. */
ConfigSummary runConfig(const TestConfig &cfg,
                        const CampaignConfig &campaign);

/** Run a list of configurations. */
std::vector<ConfigSummary> runCampaign(
    const std::vector<TestConfig> &configs,
    const CampaignConfig &campaign);

} // namespace mtc

#endif // MTC_HARNESS_CAMPAIGN_H
