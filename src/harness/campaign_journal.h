/**
 * @file
 * Campaign write-ahead journal: durable (config, test) unit records
 * on top of the framed append-only log in src/support/journal.h.
 *
 * The journal's first record is a header naming the campaign: a magic
 * word, a format version, and an identity digest folded over every
 * knob that affects the deterministic result stream (seed, scale,
 * fault/recovery knobs, platform variant, config list). A resume run
 * recomputes the digest from its own configuration and refuses a
 * journal whose header disagrees — resuming under different knobs
 * would splice incompatible result streams and silently corrupt the
 * summary. Operational knobs that cannot change results (thread
 * count, watchdog timeout, error budget, fsync cadence) are excluded,
 * so a campaign may be resumed on a different machine shape.
 *
 * Every subsequent record is one completed unit: its identity
 * (config name, test index, both pre-derived seeds), its terminal
 * status, and the full deterministic FlowResult payload — enough to
 * replay the unit into the summary bit-identically without re-running
 * it. Wall-clock fields (collectiveMs, ...) are journaled too and
 * replayed verbatim: a resumed summary reports the time the work
 * actually took when it ran, not zeros.
 */

#ifndef MTC_HARNESS_CAMPAIGN_JOURNAL_H
#define MTC_HARNESS_CAMPAIGN_JOURNAL_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "harness/campaign.h"
#include "support/journal.h"

namespace mtc
{

/** One journaled (config, test) unit. */
struct UnitRecord
{
    std::string configName;
    std::uint32_t testIndex = 0;

    /** Pre-derived seeds the unit ran under; resume cross-checks them
     * against the plan so a stale journal cannot smuggle results in
     * under a colliding (config, index) key. */
    std::uint64_t genSeed = 0;
    std::uint64_t flowSeed = 0;

    /** Terminal outcome; `outcome.result.executions` is never
     * journaled (resume does not need raw executions), and
     * `fault.quarantined` round-trips as count + iteration total
     * only — the campaign consumes nothing deeper. */
    TestOutcome outcome;
};

/** Serialize @p record into a journal frame payload. */
std::vector<std::uint8_t> encodeUnitRecord(const UnitRecord &record);

/**
 * Parse a unit-record payload.
 * @throws JournalError on a short or non-unit payload.
 */
UnitRecord decodeUnitRecord(const std::vector<std::uint8_t> &payload);

/**
 * Campaign-level journal: header-validated, keyed replay of unit
 * records plus thread-safe appends of new ones.
 */
class CampaignJournal
{
  public:
    /** What a journal belongs to (see file comment). */
    struct Identity
    {
        std::uint64_t digest = 0;

        /** Human-readable rendering of the digested knobs, stored in
         * the header purely for error messages. */
        std::string description;
    };

    /**
     * Open @p path. With @p resume false any existing file is
     * discarded and a fresh header is written. With @p resume true the
     * log is recovered (torn tail truncated away), the header is
     * validated against @p identity, and every intact unit record
     * becomes replayable through find().
     *
     * Either way the journal is protected by an advisory exclusive
     * flock for the object's lifetime: a second campaign opening the
     * same path — the classic operator accident of resuming a
     * campaign that is still running — gets a clean ConfigError
     * instead of two writers interleaving frames into one file. The
     * lock dies with the process (SIGKILL included), so a crashed
     * campaign never wedges its own resume.
     *
     * @throws ConfigError  when resuming against a journal written by
     *                      a different campaign (or an empty file with
     *                      no header to trust), or when the journal is
     *                      locked by another live campaign.
     * @throws JournalError on I/O failure or a corrupt header.
     */
    CampaignJournal(std::string path, const Identity &identity,
                    bool resume);

    ~CampaignJournal();

    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;

    /** Replayable record for (config name, test index), or nullptr if
     * that unit never completed before the crash. */
    const UnitRecord *find(const std::string &config_name,
                           std::uint32_t test_index) const;

    /** Durably append one completed unit. Thread-safe: campaign
     * workers call this concurrently. */
    void append(const UnitRecord &record);

    /** Units recovered from the log at open (resume only). */
    std::size_t replayedUnits() const { return units.size(); }

    /** Torn-tail bytes discarded during recovery (resume only). */
    std::uint64_t droppedBytes() const { return dropped; }

  private:
    using Key = std::pair<std::string, std::uint32_t>;

    std::map<Key, UnitRecord> units;
    std::uint64_t dropped = 0;
    std::mutex appendMtx;
    std::unique_ptr<JournalWriter> writer;

    /** Holds the advisory flock; owned for the journal's lifetime.
     * Distinct from the writer's fd — flock conflicts live between
     * open file descriptions, and the writer never takes the lock, so
     * the two never fight each other. */
    int lockFd = -1;
};

/**
 * The campaign's journal/trace identity: a digest folded over every
 * result-determining knob (see the file comment) plus its readable
 * rendering. Exported so the offline trace format can fingerprint a
 * dump with exactly the digest a resume would demand.
 */
CampaignJournal::Identity campaignIdentity(
    const std::vector<TestConfig> &configs,
    const CampaignConfig &campaign);

} // namespace mtc

#endif // MTC_HARNESS_CAMPAIGN_JOURNAL_H
