/**
 * @file
 * The campaign's deterministic execution plan, exported.
 *
 * Everything that fixes *what* a (config, test) unit computes —
 * pre-derived seeds, the per-config flow template, the retry loop —
 * lives here, separate from *where* units run (threads, sandbox
 * workers, distributed fleet). Every execution engine calls the same
 * three functions, which is the whole bit-identity argument: a unit's
 * result depends only on its plan, so any engine that executes every
 * unit exactly once and folds slots in test order reproduces the
 * serial summary byte for byte. The distributed worker
 * (src/harness/dist_campaign.h) re-derives the same plans on the far
 * side of a socket from the campaign spec alone.
 */

#ifndef MTC_HARNESS_CAMPAIGN_PLAN_H
#define MTC_HARNESS_CAMPAIGN_PLAN_H

#include <cstdint>
#include <vector>

#include "harness/campaign.h"

namespace mtc
{

class Watchdog;

/** Seeds of one test, fixed before any test runs. */
struct TestPlan
{
    std::uint64_t genSeed = 0;
    std::uint64_t flowSeed = 0;

    /** Root of this test's private retry-seed stream. */
    std::uint64_t retrySeed = 0;
};

/**
 * Pre-derive every test's seeds from the canonical per-config seeder
 * sequence (two draws per test, in test order — exactly the draws the
 * serial runner made), so tests can run on any worker in any order
 * and still see the very same programs. Retry seeds are the one
 * departure: the serial runner drew retry seeds from the shared
 * sequence, which would let one worker's retry shift every later
 * test's seeds; instead each test's retries come from a private
 * stream rooted in its own seeds, keeping failures local and results
 * independent of scheduling.
 */
std::vector<TestPlan> deriveTestPlans(const TestConfig &cfg,
                                      const CampaignConfig &campaign);

/** Flow template shared by all of one configuration's tests. */
FlowConfig flowTemplate(const TestConfig &cfg,
                        const CampaignConfig &campaign);

/**
 * Run one planned test with its retry budget. A test that dies on an
 * internal error (poisoned generation seed, wedged platform, harness
 * bug surfacing under fault injection) is retried with fresh seeds
 * from its private stream; after the budget it is recorded as failed
 * — one bad test must never take down a whole campaign. With a
 * watchdog armed, each attempt runs under its own deadline and
 * cancellation token; a reclaimed attempt counts as hung and is
 * retried exactly like a crashed one.
 */
TestOutcome runPlannedTest(const TestConfig &cfg,
                           const FlowConfig &flow_template,
                           const TestPlan &plan,
                           const CampaignConfig &campaign,
                           unsigned test_index, Watchdog *watchdog);

} // namespace mtc

#endif // MTC_HARNESS_CAMPAIGN_PLAN_H
