/**
 * @file
 * Bounded producer/consumer channel for the overlapped decode→check
 * pipeline.
 *
 * The streaming flow decodes unique signatures (producer, the calling
 * thread) while the collective checker consumes edge diffs (one pool
 * worker). The channel bounds the number of in-flight diffs to the
 * configured stream window, so the pipeline holds O(window) live edge
 * sets instead of materializing one DynamicEdgeSet per unique
 * signature. Single-producer/single-consumer is all the flow needs —
 * checking is inherently serial (each diff applies to the previous
 * graph) — so this is a plain mutex+condvar ring, not a lock-free
 * structure.
 */

#ifndef MTC_HARNESS_CHECK_PIPELINE_H
#define MTC_HARNESS_CHECK_PIPELINE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <limits>
#include <mutex>
#include <utility>

namespace mtc
{

/** Blocking bounded FIFO; capacity 0 means unbounded. */
template <typename T> class BoundedChannel
{
  public:
    explicit BoundedChannel(std::size_t capacity_arg)
        : capacity(capacity_arg
                       ? capacity_arg
                       : std::numeric_limits<std::size_t>::max())
    {}

    /**
     * Enqueue @p item, blocking while the channel is full.
     * @return false when the channel was poisoned (item discarded) —
     *         the consumer died and the producer should stop.
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mtx);
        spaceAvailable.wait(lock, [&] {
            return poisoned || items.size() < capacity;
        });
        if (poisoned)
            return false;
        items.push_back(std::move(item));
        lock.unlock();
        itemAvailable.notify_one();
        return true;
    }

    /**
     * Dequeue into @p out, blocking while the channel is empty.
     * @return false when the channel is closed and drained.
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mtx);
        itemAvailable.wait(lock,
                           [&] { return closed || !items.empty(); });
        if (items.empty())
            return false;
        out = std::move(items.front());
        items.pop_front();
        lock.unlock();
        spaceAvailable.notify_one();
        return true;
    }

    /** Producer is done: pop() drains the backlog, then returns false. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            closed = true;
        }
        itemAvailable.notify_all();
    }

    /** Consumer died: discard the backlog and unblock the producer
     * (push() returns false from now on). */
    void
    poison()
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            poisoned = true;
            closed = true;
            items.clear();
        }
        spaceAvailable.notify_all();
        itemAvailable.notify_all();
    }

  private:
    std::mutex mtx;
    std::condition_variable itemAvailable;
    std::condition_variable spaceAvailable;
    std::deque<T> items;
    std::size_t capacity;
    bool closed = false;
    bool poisoned = false;
};

} // namespace mtc

#endif // MTC_HARNESS_CHECK_PIPELINE_H
