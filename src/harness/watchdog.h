/**
 * @file
 * Hang watchdog: per-test deadlines enforced by one monitor thread.
 *
 * A wedged platform run would otherwise pin a ThreadPool worker
 * forever (the pool joins on destruction, so one hang deadlocks the
 * whole campaign teardown). The watchdog owns a single monitor thread
 * for the entire campaign; each platform run registers a (deadline,
 * cancellation token) entry before running and unregisters when done
 * (RAII Guard). When a deadline passes, the monitor requests stop on
 * that run's token — the executors' scheduler loops poll it and
 * abandon the run with TestHungError, which the campaign records as a
 * Hung outcome and feeds to the existing retry path.
 *
 * The monitor sleeps until the earliest registered deadline (or
 * indefinitely when idle), so an armed-but-quiet watchdog costs one
 * blocked thread and nothing else. Reclaim latency is bounded by the
 * deadline precision plus the executor's poll granularity — both far
 * inside the 2x-timeout acceptance bound.
 */

#ifndef MTC_HARNESS_WATCHDOG_H
#define MTC_HARNESS_WATCHDOG_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "support/cancellation.h"

namespace mtc
{

/** Campaign-wide hang monitor (see file comment). */
class Watchdog
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Starts the monitor thread. */
    Watchdog();

    /** Stops and joins the monitor. Outstanding guards must have been
     * destroyed first (the campaign scopes the watchdog outermost). */
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /**
     * RAII registration of one watched run: destruction unregisters
     * the deadline (the normal, non-hung exit). Move-only, so a scope
     * can hold one in a std::optional and arm it conditionally.
     */
    class Guard
    {
      public:
        ~Guard()
        {
            if (owner)
                owner->unregisterEntry(id);
        }

        Guard(Guard &&other) noexcept : owner(other.owner), id(other.id)
        {
            other.owner = nullptr;
        }

        Guard(const Guard &) = delete;
        Guard &operator=(const Guard &) = delete;
        Guard &operator=(Guard &&) = delete;

      private:
        friend class Watchdog;
        Guard(Watchdog *owner_arg, std::uint64_t id_arg)
            : owner(owner_arg), id(id_arg)
        {}

        Watchdog *owner;
        std::uint64_t id;
    };

    /**
     * Watch one run: when @p timeout elapses before the returned
     * Guard is destroyed, requestStop() is called on @p token.
     * The token must outlive the Guard.
     */
    Guard watch(CancellationToken &token,
                std::chrono::milliseconds timeout);

    /** Deadlines that expired and fired their tokens (diagnostics). */
    std::uint64_t firedCount() const;

  private:
    struct Entry
    {
        std::uint64_t id;
        Clock::time_point deadline;
        CancellationToken *token;
    };

    void monitorLoop();
    void unregisterEntry(std::uint64_t id);

    mutable std::mutex mtx;
    std::condition_variable wake;
    std::vector<Entry> entries;
    std::uint64_t nextId = 1;
    std::uint64_t fired = 0;
    bool stopping = false;
    std::thread monitor;
};

} // namespace mtc

#endif // MTC_HARNESS_WATCHDOG_H
