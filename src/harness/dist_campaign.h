/**
 * @file
 * Campaign semantics over the distributed fabric.
 *
 * The fabric (src/dist/) moves opaque bytes; this layer gives them
 * meaning. A CampaignSpec carries every knob that determines the
 * deterministic result stream — the same fields the journal identity
 * folds — so a worker on the far side of a socket re-derives exactly
 * the plans (campaign_plan.h) the coordinator holds, and a unit
 * executes identically wherever and however often it lands. Unit
 * requests and responses reuse the sandbox's shapes: a request is
 * (config index, test index), a response is an encoded UnitRecord.
 *
 * The hard-failure drills (dieAfterRuns, leakAfterRuns) are
 * deliberately not executed by distributed workers: they exist to
 * exercise the sandbox's crash containment, and a fabric worker that
 * died to one would re-arm it on every reassignment, poisoning every
 * worker in turn. The fabric's own death drill is
 * CampaignConfig::distDrillExitAfter.
 */

#ifndef MTC_HARNESS_DIST_CAMPAIGN_H
#define MTC_HARNESS_DIST_CAMPAIGN_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include <sys/types.h>

#include "harness/campaign.h"
#include "harness/campaign_plan.h"

namespace mtc
{

class Watchdog;

/** What a worker needs to execute any unit of a campaign. */
struct CampaignSpec
{
    std::vector<TestConfig> configs;
    CampaignConfig campaign;
};

/** Serialize the deterministic subset of @p spec (operational knobs
 * — journal path, fleet shape, ports — are the coordinator's own
 * business and are not shipped). */
std::vector<std::uint8_t> encodeCampaignSpec(const CampaignSpec &spec);

/** @throws DistError on a malformed or version-mismatched spec. */
CampaignSpec decodeCampaignSpec(const std::vector<std::uint8_t> &bytes);

/** Encode a (config index, test index) unit request. */
std::vector<std::uint8_t> encodeUnitRequest(std::size_t config_index,
                                            std::size_t test_index);

/** @throws DistError on a malformed request. */
std::pair<std::size_t, std::size_t>
decodeUnitRequest(const std::vector<std::uint8_t> &request);

/**
 * Worker-side unit executor: rebuilds the campaign's deterministic
 * plan from a received spec, then maps unit requests to encoded
 * UnitRecords. Constructed after the fabric handshake (and, in a
 * loopback worker, after the fork — its watchdog thread must never
 * exist in the forking parent).
 */
class CampaignUnitRunner
{
  public:
    explicit CampaignUnitRunner(CampaignSpec spec);
    ~CampaignUnitRunner();

    CampaignUnitRunner(const CampaignUnitRunner &) = delete;
    CampaignUnitRunner &operator=(const CampaignUnitRunner &) = delete;

    /** Execute one unit. @throws DistError on an out-of-range or
     * malformed request. */
    std::vector<std::uint8_t>
    run(const std::vector<std::uint8_t> &request);

  private:
    CampaignSpec spec;
    std::vector<FlowConfig> flows;           ///< per config
    std::vector<std::vector<TestPlan>> plans; ///< per config, per test
    std::unique_ptr<Watchdog> watchdog;
};

/**
 * Deterministic digest of an encoded UnitRecord, for Byzantine
 * audits: two honest executions of the same unit agree on it even
 * though their wall-clock fields differ (those are zeroed before
 * folding). An undecodable payload digests under a different seed so
 * garbage can never collide with a well-formed record.
 */
std::uint64_t
unitRecordDigest(const std::vector<std::uint8_t> &payload);

/** Knobs for one forked loopback worker. */
struct LoopbackWorkerOptions
{
    /** Die-mid-batch drill (WorkerClientConfig::exitAfterUnits). */
    std::uint64_t exitAfterUnits = 0;

    /** Byzantine drill: silently corrupt every unit result —
     * decodable, plausible, wrong — so only an audit cross-check can
     * catch it. */
    bool corruptResults = false;

    /** Fabric key; empty = keyless. */
    std::vector<std::uint8_t> key;

    /** Seeded network faults on the worker's connection. */
    NetFaultConfig netFault;

    /** The coordinator's listening descriptor, closed first thing in
     * the child (see Coordinator::listenerFd for why an inherited
     * copy would deadlock the shutdown); -1 if nothing to close. */
    int listenerFd = -1;
};

/**
 * Fork a loopback fabric worker: the child connects to the local
 * coordinator on @p port, serves units until Done, and _exit()s.
 *
 * Fork-before-threads: call while the parent is single-threaded (the
 * Coordinator is poll-based precisely so this holds).
 *
 * @return the child pid (the caller reaps it). @throws DistError if
 *         the fork fails.
 */
pid_t forkCampaignWorker(std::uint16_t port, unsigned index,
                         const LoopbackWorkerOptions &opts = {});

} // namespace mtc

#endif // MTC_HARNESS_DIST_CAMPAIGN_H
