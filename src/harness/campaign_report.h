/**
 * @file
 * The deterministic campaign report: per-config "campaign summary:"
 * lines, the folded "campaign digest:" line, and the exit-code
 * mapping, shared by mtc_coordinator and mtc_check.
 *
 * Byte-identity across producers is the whole point. The CI smoke
 * byte-diffs `grep '^campaign'` output between a serial run, a
 * distributed run, and an offline `mtc_check` re-check of a dumped
 * trace — so every line printed here must be free of wall-clock,
 * scheduling, and machine-shape influence. Keep operational output
 * (fabric stats, trace recovery notes) out of the "campaign " prefix.
 */

#ifndef MTC_HARNESS_CAMPAIGN_REPORT_H
#define MTC_HARNESS_CAMPAIGN_REPORT_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "harness/campaign.h"
#include "harness/exit_codes.h"
#include "support/framing.h"
#include "support/journal.h"

namespace mtc
{

/**
 * Fold one summary's deterministic fields (no wall-clock) into @p w —
 * the byte stream behind both the printed per-config digest and the
 * campaign digest.
 */
inline void
foldSummary(ByteWriter &w, const ConfigSummary &s)
{
    w.str(s.cfg.name());
    w.u32(s.tests);
    w.f64(s.avgUniqueSignatures);
    w.f64(s.avgSignatureBytes);
    w.f64(s.avgUnrelatedAccesses);
    w.f64(s.avgCodeRatio);
    w.u64(s.collectiveWork);
    w.u64(s.conventionalWork);
    w.u64(s.collectiveGraphs);
    w.u64(s.collectiveCompleteSorts);
    w.f64(s.fracComplete);
    w.f64(s.fracNoResort);
    w.f64(s.fracIncremental);
    w.f64(s.avgAffectedFraction);
    w.f64(s.avgComputationOverhead);
    w.f64(s.avgSortingOverhead);
    w.u64(s.violations);
    w.u64(s.quarantinedSignatures);
    w.u64(s.quarantinedIterations);
    w.u64(s.confirmedViolations);
    w.u64(s.transientViolations);
    w.u32(s.crashRetries);
    w.u32(s.testRetriesUsed);
    w.u32(s.failedTests);
    w.u32(s.hungTests);
    w.u32(s.hungAttempts);
    w.u8(s.degraded ? 1 : 0);
}

/** 16 lowercase hex digits, zero padded. */
inline std::string
hex64(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i, v >>= 4)
        out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    return out;
}

/** Campaign-wide verdict totals, folded while printing. */
struct CampaignTotals
{
    std::uint64_t violations = 0;
    std::uint64_t confirmed = 0;
    std::uint64_t transient = 0;
    std::uint64_t quarantined = 0;
    unsigned failed = 0;
    unsigned hung = 0;
    unsigned crashes = 0;
    bool tripped = false;
    bool degraded = false;
};

/**
 * Print the deterministic summary block — one "campaign summary:"
 * line per config plus the "campaign digest:" line — to @p out, and
 * degraded-config detail to @p err prefixed with @p tool.
 */
inline CampaignTotals
printCampaignReport(std::ostream &out, std::ostream &err,
                    const std::string &tool,
                    const std::vector<ConfigSummary> &summaries)
{
    CampaignTotals totals;
    ByteWriter campaign_fold;
    for (const ConfigSummary &s : summaries) {
        ByteWriter w;
        foldSummary(w, s);
        foldSummary(campaign_fold, s);
        out << "campaign summary: " << s.cfg.name()
            << " tests=" << s.tests
            << " violations=" << s.violations
            << " confirmed=" << s.confirmedViolations
            << " transient=" << s.transientViolations
            << " quarantined=" << s.quarantinedSignatures
            << " failed=" << s.failedTests
            << " hung=" << s.hungTests
            << " retries=" << s.testRetriesUsed
            << " digest="
            << hex64(fnv1a64(w.bytes().data(), w.bytes().size()))
            << "\n";
        totals.violations += s.violations;
        totals.confirmed += s.confirmedViolations;
        totals.transient += s.transientViolations;
        totals.quarantined += s.quarantinedSignatures;
        totals.failed += s.failedTests;
        totals.hung += s.hungTests;
        totals.crashes += s.crashRetries;
        totals.tripped = totals.tripped || s.tripped;
        totals.degraded =
            totals.degraded || (s.degraded && !s.tripped);
        if (s.degraded && !s.error.empty())
            err << tool << ": " << s.cfg.name()
                << " degraded: " << s.error << "\n";
    }
    out << "campaign digest: "
        << hex64(fnv1a64(campaign_fold.bytes().data(),
                         campaign_fold.bytes().size()))
        << "\n";
    return totals;
}

/** Map verdict totals to the shared exit code (see exit_codes.h for
 * the priority argument). */
inline int
campaignExitCode(const CampaignTotals &t)
{
    if (t.violations || t.confirmed)
        return kExitViolation;
    if (t.tripped)
        return kExitBreakerTripped;
    if (t.hung)
        return kExitHang;
    if (t.failed || t.crashes || t.degraded)
        return kExitPlatformCrash;
    if (t.quarantined || t.transient)
        return kExitCorruptionOnly;
    return kExitClean;
}

} // namespace mtc

#endif // MTC_HARNESS_CAMPAIGN_REPORT_H
