/**
 * @file
 * End-to-end validation flow for one test program (the paper's
 * Figure 1): instrument, execute many iterations, collect and sort
 * signatures, decode, and check — collectively and (optionally) with
 * the conventional per-graph baseline for comparison.
 *
 * The flow also gathers every metric the evaluation section reports:
 * unique-signature counts (Figure 8), checker timings and work
 * (Figures 9 and 14), execution-overhead components (Figure 10),
 * intrusiveness (Figure 11), and code size (Figure 12).
 */

#ifndef MTC_HARNESS_VALIDATION_FLOW_H
#define MTC_HARNESS_VALIDATION_FLOW_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/codesize.h"
#include "core/collective_checker.h"
#include "core/conventional_checker.h"
#include "core/load_analysis.h"
#include "core/perturbation.h"
#include "core/signature.h"
#include "core/signature_accumulator.h"
#include "core/signature_codec.h"
#include "sim/coherent_executor.h"
#include "sim/executor_config.h"
#include "sim/fault_injector.h"
#include "support/profiler.h"
#include "testgen/test_program.h"

namespace mtc
{

/** Graceful-degradation knobs: how hard the flow fights to keep a
 * campaign alive when the platform or the readout path misbehaves.
 * Defaults are all-off so a fault-free flow is bit-identical to the
 * pre-fault pipeline. */
struct RecoveryConfig
{
    /**
     * K of the K-re-execution confirmation protocol: when the readout
     * path is faulted and a violating (cyclic) signature shows up, the
     * test is re-executed up to K times; only a reproduced violation
     * is reported as confirmed, otherwise it is reclassified as
     * transient readout corruption. 0 disables confirmation (every
     * violation is reported as-is). Ignored when fault injection is
     * off — an unfaulted readout cannot fabricate violations.
     */
    unsigned confirmationRuns = 2;

    /** Iterations per confirmation re-execution (0 = min(iterations,
     * 256)). */
    std::uint64_t confirmationIterations = 0;

    /** How many times a test-loop platform crash (protocol deadlock
     * watchdog) is retried with a reseeded schedule before the test
     * gives up collecting further iterations. */
    unsigned crashRetries = 0;
};

/** One undecodable signature held back from checking. */
struct QuarantinedSignature
{
    Signature signature;

    /** Iterations that produced this exact (corrupt) word array. */
    std::uint64_t iterations = 0;

    DecodeFaultKind kind = DecodeFaultKind::WordCountMismatch;
    std::uint32_t thread = 0; ///< thread whose stream failed
    std::uint32_t word = 0;   ///< global word index of the failure
    std::string detail;       ///< decoder's message
};

/** Everything the fault-tolerant pipeline observed and decided. */
struct FaultReport
{
    /** Ground truth from the injector (test loop only; confirmation
     * re-executions keep their own ledgers). */
    InjectionCounts injected;

    /** Signatures that reached the host buffer, counting duplicates. */
    std::uint64_t recordedIterations = 0;

    /** Undecodable signatures held back from checking. */
    std::vector<QuarantinedSignature> quarantined;

    /** Iterations behind the quarantined signatures. */
    std::uint64_t quarantinedIterations = 0;

    /** Unique signatures that decoded cleanly and were checked. */
    std::uint64_t decodedSignatures = 0;

    /** Violating signatures reproduced by re-execution (confirmed MCM
     * violations). */
    std::uint64_t confirmedViolations = 0;

    /** Violating signatures NOT reproduced in K re-executions —
     * reported as suspected readout corruption, not as violations. */
    std::uint64_t transientViolations = 0;

    /** Confirmation re-executions actually performed. */
    unsigned confirmationRunsUsed = 0;

    /** Platform-crash retries consumed by the test loop. */
    unsigned crashRetries = 0;

    /** Human-readable degradation note (empty when nothing was
     * reclassified or retried). */
    std::string note;

    /** Single source of truth for "how many signatures are held back":
     * derived from the quarantine list itself so it can never drift
     * from the entries (campaign totals, the CLI summary, and the
     * benches all sum this accessor rather than keeping their own
     * counters). */
    std::uint64_t
    quarantinedCount() const
    {
        return static_cast<std::uint64_t>(quarantined.size());
    }

    /** Anything fault-related happened at all — including confirmation
     * re-executions, which run (and cost platform time) even when the
     * violation is ultimately confirmed rather than reclassified. */
    bool
    anyFaultActivity() const
    {
        return injected.totalEvents() || quarantinedCount() != 0 ||
            transientViolations || confirmationRunsUsed || crashRetries;
    }
};

/** Knobs of one flow run. */
struct FlowConfig
{
    /** Test-loop iteration count (paper: 65,536 bare-metal; 1,024 in
     * gem5; our defaults are scaled — see EXPERIMENTS.md). */
    std::uint64_t iterations = 4096;

    std::uint64_t seed = 2017;

    /** Platform under validation. */
    ExecutorConfig exec;

    /** When set, the test runs on the message-level coherent platform
     * (the gem5-grade model) instead of the operational executor, and
     * `exec` is ignored: the coherent config carries its own model
     * and bug hooks. */
    std::optional<CoherentConfig> coherent;

    /** Load-analysis options (static pruning extension). */
    AnalysisOptions analysis;

    /** Also run the conventional checker (for Figure 9 comparisons). */
    bool runConventional = true;

    /** Keep all unique decoded executions (k-medoids inputs). */
    bool keepExecutions = false;

    /**
     * Keep the sorted unique signature stream (FlowResult::
     * signatureStream) — the raw material of an offline trace dump.
     * Off by default: the stream costs memory proportional to the
     * behavior count and nothing in the inline pipeline needs it after
     * checking. Operational knob, excluded from campaign identity:
     * keeping the stream changes what is retained, never what is
     * computed.
     */
    bool keepSignatures = false;

    /** Readout-path fault injection (all rates 0 = clean readout). */
    FaultConfig fault;

    /** Graceful-degradation knobs (defaults preserve old behavior). */
    RecoveryConfig recovery;

    /**
     * Lockstep batch width of the test loop: how many iterations are
     * dispatched through the platform's batched engine at a time. 0
     * (the default) resolves to 32; 1 degenerates to scalar stepping.
     * Each iteration's RNG stream is derived from one master stream
     * in iteration order, so the observed signature multiset, all
     * summaries, and the journal digest are bit-identical at every
     * batch width. Operational knob only — excluded from campaign
     * identity, like `threads`.
     */
    std::uint32_t batch = 0;

    /**
     * Stream the post-execution path: delta-decode the sorted unique
     * signatures (StreamDecoder), derive observed edges incrementally
     * (EdgeDeriver), and feed the collective checker per-signature
     * edge diffs — overlapped with decoding on the flow pool when
     * threads > 1. false runs the retired barrier pipeline
     * (decode-all, then check-all, full edge sets materialized), kept
     * for A/B benches and equivalence tests. Results are bit-identical
     * either way; operational knob only, excluded from campaign
     * identity like `threads`.
     */
    bool streamCheck = true;

    /**
     * Bounded decode→check window of the overlapped pipeline: how many
     * edge diffs may be in flight between the decoding producer and
     * the checking consumer (0 = unbounded). Only meaningful when
     * streamCheck is on and the flow runs with threads > 1; results
     * are bit-identical at any window.
     */
    std::size_t streamWindow = 64;

    /**
     * Worker threads for the in-test parallel stages — the
     * decode/observed-edge loop over unique signatures and the sharded
     * collective checker. 1 (default) runs fully serial; 0 resolves to
     * the hardware concurrency. Results are bit-identical at any
     * value: every parallel stage writes to per-index slots that are
     * merged in deterministic order.
     */
    unsigned threads = 1;

    /**
     * Shard size of the collective checker: the sorted unique
     * signatures are cut into contiguous shards of this many edge
     * sets, each checked independently (one extra complete sort per
     * shard). 0 (default) checks unsharded. Verdicts are identical
     * either way; checker work stats differ by the per-shard sort tax.
     */
    std::size_t shardSize = 0;

    /** Collect the per-phase wall-clock breakdown (FlowResult::profile).
     * Off by default: disabled scopes never touch the clock. */
    bool profile = false;

    /**
     * Reuse one RunArena (and one encode/readout buffer set) across
     * the whole test loop — the zero-allocation hot path. false
     * reconstructs the arena every iteration (the pre-arena behavior),
     * kept as a comparison baseline for benches and tests; results are
     * bit-identical either way.
     */
    bool reuseArena = true;

    /**
     * Watchdog stop token threaded into every platform run of this
     * flow (test loop and confirmation re-executions). When it fires,
     * the run — and therefore runTest — aborts with TestHungError;
     * the campaign layer records the unit as Hung. nullptr = never
     * cancelled (the default, bit-identical to the pre-watchdog flow).
     */
    const CancellationToken *cancel = nullptr;
};

/** Everything measured while validating one test. */
struct FlowResult
{
    std::uint64_t iterationsRun = 0;
    std::uint64_t uniqueSignatures = 0;

    /**
     * Order-independent FNV-1a digest of the sorted unique signature
     * multiset (words + per-signature iteration counts). One u64
     * fingerprints the whole observed-behavior set, so the campaign
     * journal can assert that a resumed unit replays exactly the
     * signatures the original run recorded.
     */
    std::uint64_t signatureSetDigest = 0;

    /** Instrumented-chain tail assertions (unexpected loaded value). */
    std::uint64_t assertionFailures = 0;

    /** Platform crashes (injected protocol deadlock). */
    std::uint64_t platformCrashes = 0;

    /** Unique signatures whose constraint graph is cyclic. */
    std::uint64_t violatingSignatures = 0;

    bool
    anyViolation() const
    {
        return violatingSignatures || assertionFailures ||
            platformCrashes;
    }

    CollectiveStats collective;
    ConventionalStats conventional;

    /** Wall-clock of the checking phases (sorting only, graphs
     * pre-built — the paper's Figure 9 methodology). */
    double collectiveMs = 0.0;
    double conventionalMs = 0.0;

    /** Wall-clock of decode + observed-edge derivation (shared). */
    double decodeMs = 0.0;

    /** Delta-decode accounting of the streaming pipeline: per-thread
     * signature-word slices reused verbatim from the previous sorted
     * signature vs. peeled in full. Both zero when the barrier
     * pipeline (streamCheck = false) ran. */
    std::uint64_t sliceReuses = 0;
    std::uint64_t sliceDecodes = 0;

    /** Figure 10 components. */
    std::uint64_t originalCycles = 0;
    std::uint64_t computeCycles = 0;
    std::uint64_t sortCycles = 0;
    double computationOverhead = 0.0;
    double sortingOverhead = 0.0;

    IntrusivenessReport intrusive;
    CodeSizeReport code;

    /** First violation's cycle rendered for humans (Figure 13). */
    std::string violationWitness;

    /** Fault-injection ledger, quarantine, and confirmation outcome. */
    FaultReport fault;

    /** Per-phase wall-clock breakdown (empty unless FlowConfig::profile). */
    PhaseBreakdown profile;

    /** Unique decoded executions (only when keepExecutions). */
    std::vector<Execution> executions;

    /**
     * The sorted unique signature stream the checker consumed (only
     * when FlowConfig::keepSignatures): exactly what a trace dump
     * records per test, including undecodable (quarantined) entries,
     * so an offline re-check classifies them identically.
     */
    std::vector<SignatureCount> signatureStream;
};

/**
 * The post-execution checking stage: decode the sorted unique
 * signature stream, derive observed edges, and run the collective
 * (and optionally conventional) checker, filling the checking-side
 * fields of @p result — collective/conventional stats, timings,
 * decode accounting, quarantine, violatingSignatures, and the
 * violation witness.
 *
 * Shared by the inline flow (ValidationFlow::runTest) and the offline
 * trace checker (src/harness/trace_check.h): it consumes only static
 * test artifacts plus the sorted stream, so its verdicts and stats are
 * bit-identical whether the signatures arrived from a live platform or
 * from a trace file.
 *
 * Honored @p cfg knobs: threads, streamCheck, streamWindow, shardSize,
 * runConventional, keepExecutions. @p verdicts_out receives one
 * cyclic/acyclic verdict per decoded signature and @p decoded_idx_out
 * the indices into @p unique that decoded cleanly (both in stream
 * order); pass empty vectors.
 */
void checkSignatureStream(const TestProgram &program,
                          const SignatureCodec &codec, MemoryModel model,
                          const FlowConfig &cfg,
                          const std::vector<SignatureCount> &unique,
                          PhaseProfiler &prof, FlowResult &result,
                          std::vector<bool> &verdicts_out,
                          std::vector<std::size_t> &decoded_idx_out);

/** Runs the full flow over test programs. */
class ValidationFlow
{
  public:
    explicit ValidationFlow(FlowConfig cfg_arg);

    /** Validate one test program. */
    FlowResult runTest(const TestProgram &program);

  private:
    FlowConfig cfg;
};

} // namespace mtc

#endif // MTC_HARNESS_VALIDATION_FLOW_H
