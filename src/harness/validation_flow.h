/**
 * @file
 * End-to-end validation flow for one test program (the paper's
 * Figure 1): instrument, execute many iterations, collect and sort
 * signatures, decode, and check — collectively and (optionally) with
 * the conventional per-graph baseline for comparison.
 *
 * The flow also gathers every metric the evaluation section reports:
 * unique-signature counts (Figure 8), checker timings and work
 * (Figures 9 and 14), execution-overhead components (Figure 10),
 * intrusiveness (Figure 11), and code size (Figure 12).
 */

#ifndef MTC_HARNESS_VALIDATION_FLOW_H
#define MTC_HARNESS_VALIDATION_FLOW_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/codesize.h"
#include "core/collective_checker.h"
#include "core/conventional_checker.h"
#include "core/load_analysis.h"
#include "core/perturbation.h"
#include "core/signature.h"
#include "sim/coherent_executor.h"
#include "sim/executor_config.h"
#include "testgen/test_program.h"

namespace mtc
{

/** Knobs of one flow run. */
struct FlowConfig
{
    /** Test-loop iteration count (paper: 65,536 bare-metal; 1,024 in
     * gem5; our defaults are scaled — see EXPERIMENTS.md). */
    std::uint64_t iterations = 4096;

    std::uint64_t seed = 2017;

    /** Platform under validation. */
    ExecutorConfig exec;

    /** When set, the test runs on the message-level coherent platform
     * (the gem5-grade model) instead of the operational executor, and
     * `exec` is ignored: the coherent config carries its own model
     * and bug hooks. */
    std::optional<CoherentConfig> coherent;

    /** Load-analysis options (static pruning extension). */
    AnalysisOptions analysis;

    /** Also run the conventional checker (for Figure 9 comparisons). */
    bool runConventional = true;

    /** Keep all unique decoded executions (k-medoids inputs). */
    bool keepExecutions = false;
};

/** Everything measured while validating one test. */
struct FlowResult
{
    std::uint64_t iterationsRun = 0;
    std::uint64_t uniqueSignatures = 0;

    /** Instrumented-chain tail assertions (unexpected loaded value). */
    std::uint64_t assertionFailures = 0;

    /** Platform crashes (injected protocol deadlock). */
    std::uint64_t platformCrashes = 0;

    /** Unique signatures whose constraint graph is cyclic. */
    std::uint64_t violatingSignatures = 0;

    bool
    anyViolation() const
    {
        return violatingSignatures || assertionFailures ||
            platformCrashes;
    }

    CollectiveStats collective;
    ConventionalStats conventional;

    /** Wall-clock of the checking phases (sorting only, graphs
     * pre-built — the paper's Figure 9 methodology). */
    double collectiveMs = 0.0;
    double conventionalMs = 0.0;

    /** Wall-clock of decode + observed-edge derivation (shared). */
    double decodeMs = 0.0;

    /** Figure 10 components. */
    std::uint64_t originalCycles = 0;
    std::uint64_t computeCycles = 0;
    std::uint64_t sortCycles = 0;
    double computationOverhead = 0.0;
    double sortingOverhead = 0.0;

    IntrusivenessReport intrusive;
    CodeSizeReport code;

    /** First violation's cycle rendered for humans (Figure 13). */
    std::string violationWitness;

    /** Unique decoded executions (only when keepExecutions). */
    std::vector<Execution> executions;
};

/** Runs the full flow over test programs. */
class ValidationFlow
{
  public:
    explicit ValidationFlow(FlowConfig cfg_arg);

    /** Validate one test program. */
    FlowResult runTest(const TestProgram &program);

  private:
    FlowConfig cfg;
};

} // namespace mtc

#endif // MTC_HARNESS_VALIDATION_FLOW_H
