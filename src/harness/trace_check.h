/**
 * @file
 * Offline trace checking: dump a campaign's signature streams to a
 * trace file (writeCampaignTrace), and later re-run the streaming
 * collective checker over them standalone (checkTrace / mtc_check),
 * producing per-config summaries byte-identical to the inline run.
 *
 * The dump is the last step of runCampaign in every execution mode —
 * in-process, sandboxed, distributed — because every mode lands its
 * outcomes in the same parent-side (config, test) slots; the trace
 * walks those slots in deterministic unit order regardless of which
 * worker produced them, so the file bytes are mode-invariant for a
 * given campaign.
 *
 * Ingestion is hardened per the trace format's threat model
 * (src/core/trace_format.h): every failure is a classified
 * TraceFaultKind, decoders bound allocations by the bytes present,
 * and a faulted trace either aborts with the classification (strict)
 * or yields a degraded summary over the longest intact prefix with
 * every fault reported (default).
 */

#ifndef MTC_HARNESS_TRACE_CHECK_H
#define MTC_HARNESS_TRACE_CHECK_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/trace_format.h"
#include "harness/campaign.h"
#include "harness/campaign_plan.h"

namespace mtc
{

/** Knobs of one offline check run. All operational: none of them can
 * change a verified summary's bytes. */
struct TraceCheckOptions
{
    std::string tracePath;

    /** Abort (throw TraceError) on the first fault instead of
     * quarantining it and degrading the summary. */
    bool strict = false;

    /** When set, every verified unit appends a checkpoint record here
     * (itself a trace-format file), so a killed check resumes. */
    std::string checkpointPath;

    /** Replay matching verdicts from @ref checkpointPath instead of
     * re-verifying. A checkpoint for another trace, or an entry whose
     * payload digest no longer matches the trace's bytes, is ignored
     * and the unit re-checked — a stale checkpoint can cost work,
     * never correctness. */
    bool resume = false;

    /** Checker parallelism / pipeline knobs (FlowConfig semantics:
     * results bit-identical at any setting). */
    unsigned threads = 1;
    bool streamCheck = true;
    std::size_t streamWindow = 64;
};

/** One classified ingestion fault observed during a degraded check. */
struct TraceFault
{
    TraceFaultKind kind = TraceFaultKind::Corrupt;
    std::string detail;
};

/** What an offline check did and found. */
struct TraceCheckReport
{
    /** Per-config summaries — byte-identical (through
     * campaign_report.h) to the producing run's when the trace is
     * intact; quarantined/missing units count as skipped. */
    std::vector<ConfigSummary> summaries;

    /** Human-readable campaign identity from the trace header. */
    std::string identityDescription;

    std::size_t unitsInTrace = 0;   ///< unit records seen (incl. dupes)
    std::size_t unitsVerified = 0;  ///< re-checked against their streams
    std::size_t unitsAdopted = 0;   ///< non-Ok outcomes adopted verbatim
    std::size_t unitsReplayed = 0;  ///< skipped via matching checkpoint
    std::size_t quarantinedRecords = 0; ///< records excluded from summary
    std::size_t missingUnits = 0;   ///< planned units absent from trace
    std::size_t duplicateUnits = 0; ///< repeated (config, test) keys
    std::uint64_t tornBytesDropped = 0;
    std::uint64_t unknownRecordsSkipped = 0;

    /** Every classified fault, in discovery order (empty = clean). */
    std::vector<TraceFault> faults;

    bool anyFault() const { return !faults.empty(); }
};

/**
 * Ingest and verify the trace at @p options.tracePath.
 *
 * Verification re-derives each Ok unit's test program from the seeds
 * the spec fixes, re-instruments it, re-runs the shared checking stage
 * (checkSignatureStream) over the recorded signature stream, and
 * cross-checks every deterministic recorded field — signature-set
 * digest, checker stats, quarantine ledger, violation counts, static
 * metrics — against the recomputation. Any disagreement is a
 * FingerprintMismatch on that record.
 *
 * @throws TraceError on fatal faults in any mode (unreadable file, no
 *         header, version skew, undecodable spec, header fingerprint
 *         mismatch), and on the first fault of any kind under
 *         `strict`.
 * @throws ConfigError/Error on operational failures (bad options).
 */
TraceCheckReport checkTrace(const TraceCheckOptions &options);

/**
 * Dump a finished campaign to @p path: header (identity fingerprint +
 * encoded spec) followed by one unit record per (config, test) slot in
 * deterministic unit order. Configs whose setup failed contribute no
 * units (their degradation is re-derived by the consumer from the same
 * spec).
 *
 * @throws ConfigError when an Ok slot claims unique signatures but
 *         carries no signature stream — the fingerprint of replaying a
 *         journal written by a campaign that did not retain streams;
 *         such a dump would verify as corrupt, so it is refused here.
 * @throws JournalError on I/O failure.
 */
void writeCampaignTrace(
    const std::string &path, const std::vector<TestConfig> &configs,
    const CampaignConfig &campaign,
    const std::vector<std::vector<TestPlan>> &plans,
    const std::vector<std::vector<TestOutcome>> &outcomes);

} // namespace mtc

#endif // MTC_HARNESS_TRACE_CHECK_H
