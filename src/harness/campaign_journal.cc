#include "harness/campaign_journal.h"

#include <cerrno>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "support/error.h"
#include "support/process.h"
#include "support/stats.h"

namespace mtc
{

namespace
{

/** Payload discriminators (first byte of every frame payload). */
constexpr std::uint8_t kHeaderTag = 1;
constexpr std::uint8_t kUnitTag = 2;

constexpr std::uint32_t kJournalMagic = 0x4D54434Au; // "MTCJ"
// v2: FlowResult gained sliceReuses/sliceDecodes (streaming pipeline
// delta-decode accounting), serialized right after decodeMs.
// v3: FlowResult gained signatureStream (sorted unique signatures for
// offline trace dumps), serialized after the profile block. Empty
// unless the flow ran with keepSignatures.
constexpr std::uint32_t kJournalVersion = 3;

void
encodeFlowResult(ByteWriter &w, const FlowResult &r)
{
    w.u64(r.iterationsRun);
    w.u64(r.uniqueSignatures);
    w.u64(r.signatureSetDigest);
    w.u64(r.assertionFailures);
    w.u64(r.platformCrashes);
    w.u64(r.violatingSignatures);

    w.u64(r.collective.graphsChecked);
    w.u64(r.collective.violations);
    w.u64(r.collective.completeSorts);
    w.u64(r.collective.noResortNeeded);
    w.u64(r.collective.incrementalResorts);
    w.f64(r.collective.affectedFraction.sum());
    w.u64(r.collective.affectedFraction.count());
    w.u64(r.collective.verticesProcessed);
    w.u64(r.collective.edgesProcessed);

    w.u64(r.conventional.graphsChecked);
    w.u64(r.conventional.violations);
    w.u64(r.conventional.verticesProcessed);
    w.u64(r.conventional.edgesProcessed);

    w.f64(r.collectiveMs);
    w.f64(r.conventionalMs);
    w.f64(r.decodeMs);
    w.u64(r.sliceReuses);
    w.u64(r.sliceDecodes);

    w.u64(r.originalCycles);
    w.u64(r.computeCycles);
    w.u64(r.sortCycles);
    w.f64(r.computationOverhead);
    w.f64(r.sortingOverhead);

    w.u64(r.intrusive.testLoads);
    w.u64(r.intrusive.testStores);
    w.u64(r.intrusive.flushStores);
    w.u64(r.intrusive.signatureWords);
    w.u64(r.intrusive.signatureBytes);

    w.u64(r.code.originalBytes);
    w.u64(r.code.instrumentedBytes);

    w.str(r.violationWitness);

    w.u64(r.fault.injected.bitFlips);
    w.u64(r.fault.injected.tornStores);
    w.u64(r.fault.injected.truncations);
    w.u64(r.fault.injected.dropped);
    w.u64(r.fault.injected.duplicated);
    w.u64(r.fault.injected.corruptedIterations);
    w.u64(r.fault.recordedIterations);
    w.u64(r.fault.quarantinedCount());
    w.u64(r.fault.quarantinedIterations);
    w.u64(r.fault.decodedSignatures);
    w.u64(r.fault.confirmedViolations);
    w.u64(r.fault.transientViolations);
    w.u32(r.fault.confirmationRunsUsed);
    w.u32(r.fault.crashRetries);
    w.str(r.fault.note);

    w.u64(r.profile.totalNs);
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
        w.u64(r.profile.ns[p]);
        w.u64(r.profile.count[p]);
    }

    w.u64(r.signatureStream.size());
    for (const SignatureCount &entry : r.signatureStream) {
        w.u32(static_cast<std::uint32_t>(
            entry.signature.words.size()));
        for (const std::uint64_t word : entry.signature.words)
            w.u64(word);
        w.u64(entry.iterations);
    }
}

FlowResult
decodeFlowResult(ByteReader &rd)
{
    FlowResult r;
    r.iterationsRun = rd.u64();
    r.uniqueSignatures = rd.u64();
    r.signatureSetDigest = rd.u64();
    r.assertionFailures = rd.u64();
    r.platformCrashes = rd.u64();
    r.violatingSignatures = rd.u64();

    r.collective.graphsChecked = rd.u64();
    r.collective.violations = rd.u64();
    r.collective.completeSorts = rd.u64();
    r.collective.noResortNeeded = rd.u64();
    r.collective.incrementalResorts = rd.u64();
    const double affected_sum = rd.f64();
    const std::uint64_t affected_count = rd.u64();
    r.collective.affectedFraction = RunningStat::fromSumCount(
        affected_sum, static_cast<std::size_t>(affected_count));
    r.collective.verticesProcessed = rd.u64();
    r.collective.edgesProcessed = rd.u64();

    r.conventional.graphsChecked = rd.u64();
    r.conventional.violations = rd.u64();
    r.conventional.verticesProcessed = rd.u64();
    r.conventional.edgesProcessed = rd.u64();

    r.collectiveMs = rd.f64();
    r.conventionalMs = rd.f64();
    r.decodeMs = rd.f64();
    r.sliceReuses = rd.u64();
    r.sliceDecodes = rd.u64();

    r.originalCycles = rd.u64();
    r.computeCycles = rd.u64();
    r.sortCycles = rd.u64();
    r.computationOverhead = rd.f64();
    r.sortingOverhead = rd.f64();

    r.intrusive.testLoads = rd.u64();
    r.intrusive.testStores = rd.u64();
    r.intrusive.flushStores = rd.u64();
    r.intrusive.signatureWords = rd.u64();
    r.intrusive.signatureBytes = rd.u64();

    r.code.originalBytes = rd.u64();
    r.code.instrumentedBytes = rd.u64();

    r.violationWitness = rd.str();

    r.fault.injected.bitFlips = rd.u64();
    r.fault.injected.tornStores = rd.u64();
    r.fault.injected.truncations = rd.u64();
    r.fault.injected.dropped = rd.u64();
    r.fault.injected.duplicated = rd.u64();
    r.fault.injected.corruptedIterations = rd.u64();
    r.fault.recordedIterations = rd.u64();
    // The quarantine list round-trips as its count only: everything
    // downstream of a completed unit reads quarantinedCount() and
    // quarantinedIterations, never the entries.
    const std::uint64_t quarantined = rd.u64();
    // Unit records cross the fabric wire, so this count is untrusted:
    // a forged value must be a classified decode error, not a
    // many-gigabyte resize. Honest counts are bounded by a unit's
    // iterations, orders of magnitude below this ceiling.
    if (quarantined > (1ull << 24))
        throw JournalError("absurd quarantine count in unit record");
    r.fault.quarantined.resize(static_cast<std::size_t>(quarantined));
    r.fault.quarantinedIterations = rd.u64();
    r.fault.decodedSignatures = rd.u64();
    r.fault.confirmedViolations = rd.u64();
    r.fault.transientViolations = rd.u64();
    r.fault.confirmationRunsUsed = rd.u32();
    r.fault.crashRetries = rd.u32();
    r.fault.note = rd.str();

    r.profile.totalNs = rd.u64();
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
        r.profile.ns[p] = rd.u64();
        r.profile.count[p] = rd.u64();
    }

    // Signature stream: untrusted counts (the record crosses the
    // fabric wire and rides in trace files), so every length is
    // bounded by the bytes actually remaining — a forged count must
    // classify as truncation, never attempt an allocation. The
    // smallest entry is 12 bytes (u32 word count + u64 iterations).
    const std::uint64_t stream_len = rd.u64();
    if (stream_len > rd.remaining() / 12)
        throw JournalError("absurd signature-stream length in unit "
                           "record");
    r.signatureStream.resize(static_cast<std::size_t>(stream_len));
    for (SignatureCount &entry : r.signatureStream) {
        const std::uint32_t words = rd.u32();
        if (words > rd.remaining() / 8)
            throw JournalError("absurd signature word count in unit "
                               "record");
        entry.signature.words.resize(words);
        for (std::uint32_t i = 0; i < words; ++i)
            entry.signature.words[i] = rd.u64();
        entry.iterations = rd.u64();
    }
    return r;
}

std::vector<std::uint8_t>
encodeHeader(const CampaignJournal::Identity &identity)
{
    ByteWriter w;
    w.u8(kHeaderTag);
    w.u32(kJournalMagic);
    w.u32(kJournalVersion);
    w.u64(identity.digest);
    w.str(identity.description);
    return w.bytes();
}

} // namespace

std::vector<std::uint8_t>
encodeUnitRecord(const UnitRecord &record)
{
    ByteWriter w;
    w.u8(kUnitTag);
    w.str(record.configName);
    w.u32(record.testIndex);
    w.u64(record.genSeed);
    w.u64(record.flowSeed);
    w.u8(static_cast<std::uint8_t>(record.outcome.status));
    w.u8(record.outcome.ok ? 1 : 0);
    w.u32(record.outcome.retriesUsed);
    w.u32(record.outcome.hungAttempts);
    encodeFlowResult(w, record.outcome.result);
    return w.bytes();
}

UnitRecord
decodeUnitRecord(const std::vector<std::uint8_t> &payload)
{
    ByteReader rd(payload);
    if (rd.u8() != kUnitTag)
        throw JournalError("journal record is not a unit record");
    UnitRecord record;
    record.configName = rd.str();
    record.testIndex = rd.u32();
    record.genSeed = rd.u64();
    record.flowSeed = rd.u64();
    const std::uint8_t status = rd.u8();
    if (status > static_cast<std::uint8_t>(TestStatus::Skipped))
        throw JournalError("journal unit record has unknown status " +
                           std::to_string(status));
    record.outcome.status = static_cast<TestStatus>(status);
    record.outcome.ok = rd.u8() != 0;
    record.outcome.retriesUsed = rd.u32();
    record.outcome.hungAttempts = rd.u32();
    record.outcome.result = decodeFlowResult(rd);
    return record;
}

CampaignJournal::CampaignJournal(std::string path,
                                 const Identity &identity, bool resume)
{
    // Take the advisory lock BEFORE any mutation: the fresh-open path
    // below truncates, and truncating a journal another campaign is
    // actively appending to is exactly the accident the lock exists
    // to prevent.
    lockFd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (lockFd < 0) {
        throw JournalError("cannot open journal '" + path +
                           "': " + std::strerror(errno));
    }
    if (::flock(lockFd, LOCK_EX | LOCK_NB) != 0) {
        const int err = errno;
        ::close(lockFd);
        lockFd = -1;
        if (err == EWOULDBLOCK) {
            throw ConfigError(
                "journal '" + path +
                "' is locked by another campaign — two campaigns "
                "writing one journal would interleave their records; "
                "wait for the other run or give this one its own "
                "journal path");
        }
        throw JournalError("cannot lock journal '" + path +
                           "': " + std::strerror(err));
    }
    // The flock lives on the open-file description, which forked
    // worker children inherit: without this, a SIGKILLed campaign's
    // still-dying fleet keeps the journal "locked by another
    // campaign" against the very resume trying to take over. Register
    // the fd so every worker child closes its copy at fork.
    registerParentOnlyFd(lockFd);

    // From here on the lock is held. A throw below leaves the
    // constructor — so the destructor never runs — and a leaked fd
    // would keep the flock for the rest of the process, turning one
    // rejected resume (bad identity, torn header, ...) into "journal
    // is locked" for every later attempt in the same process.
    try {
        if (!resume) {
            // Fresh campaign: an existing file at the path is stale
            // state from some earlier run — drop it rather than
            // splice onto it.
            std::ofstream(path, std::ios::binary | std::ios::trunc);
            writer = std::make_unique<JournalWriter>(path);
            writer->append(encodeHeader(identity));
            writer->sync(); // the header must never be lost to a crash
            return;
        }

        JournalRecovery recovery = readJournal(path);
        dropped = recovery.droppedBytes;
        if (recovery.records.empty())
            throw ConfigError(
                "--resume: journal '" + path +
                "' has no intact header record to resume from" +
                (dropped ? " (its only record was torn)" : ""));

        ByteReader header(recovery.records.front());
        if (header.u8() != kHeaderTag || header.u32() != kJournalMagic)
            throw ConfigError("--resume: '" + path +
                              "' is not a campaign journal");
        const std::uint32_t version = header.u32();
        if (version != kJournalVersion)
            throw ConfigError(
                "--resume: journal '" + path + "' is format version " +
                std::to_string(version) +
                ", this build writes version " +
                std::to_string(kJournalVersion));
        const std::uint64_t digest = header.u64();
        const std::string description = header.str();
        if (digest != identity.digest)
            throw ConfigError(
                "--resume: journal '" + path +
                "' was written by a different campaign\n  journal:  " +
                description + "\n  current:  " + identity.description);

        for (std::size_t i = 1; i < recovery.records.size(); ++i) {
            UnitRecord record = decodeUnitRecord(recovery.records[i]);
            Key key{record.configName, record.testIndex};
            units.insert_or_assign(std::move(key), std::move(record));
        }

        // Drop the torn tail on disk too, then append after the last
        // intact frame.
        truncateToValidPrefix(path, recovery);
        writer = std::make_unique<JournalWriter>(path);
    } catch (...) {
        unregisterParentOnlyFd(lockFd);
        ::close(lockFd);
        lockFd = -1;
        throw;
    }
}

CampaignJournal::~CampaignJournal()
{
    if (lockFd >= 0) {
        unregisterParentOnlyFd(lockFd);
        ::close(lockFd); // releases the flock
    }
}

const UnitRecord *
CampaignJournal::find(const std::string &config_name,
                      std::uint32_t test_index) const
{
    const auto it = units.find(Key{config_name, test_index});
    return it == units.end() ? nullptr : &it->second;
}

void
CampaignJournal::append(const UnitRecord &record)
{
    const std::vector<std::uint8_t> payload = encodeUnitRecord(record);
    std::lock_guard<std::mutex> lock(appendMtx);
    writer->append(payload);
}

} // namespace mtc
