#include "harness/watchdog.h"

#include <algorithm>

namespace mtc
{

Watchdog::Watchdog() : monitor([this] { monitorLoop(); }) {}

Watchdog::~Watchdog()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        stopping = true;
    }
    wake.notify_all();
    monitor.join();
}

Watchdog::Guard
Watchdog::watch(CancellationToken &token,
                std::chrono::milliseconds timeout)
{
    std::uint64_t id;
    {
        std::unique_lock<std::mutex> lock(mtx);
        id = nextId++;
        entries.push_back({id, Clock::now() + timeout, &token});
    }
    // The new deadline may be earlier than whatever the monitor is
    // currently sleeping towards.
    wake.notify_all();
    return Guard(this, id);
}

std::uint64_t
Watchdog::firedCount() const
{
    std::unique_lock<std::mutex> lock(mtx);
    return fired;
}

void
Watchdog::unregisterEntry(std::uint64_t id)
{
    std::unique_lock<std::mutex> lock(mtx);
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [id](const Entry &e) {
                                     return e.id == id;
                                 }),
                  entries.end());
    // No notify needed: a vanished deadline only ever makes the
    // monitor's next wake-up conservative (it re-scans and re-sleeps).
}

void
Watchdog::monitorLoop()
{
    std::unique_lock<std::mutex> lock(mtx);
    for (;;) {
        if (stopping)
            return;
        if (entries.empty()) {
            wake.wait(lock);
            continue;
        }
        const auto earliest = std::min_element(
            entries.begin(), entries.end(),
            [](const Entry &a, const Entry &b) {
                return a.deadline < b.deadline;
            });
        const auto now = Clock::now();
        if (earliest->deadline > now) {
            wake.wait_until(lock, earliest->deadline);
            continue; // re-scan: entries may have changed meanwhile
        }
        // Fire every expired entry. The entry stays registered until
        // its Guard dies — requestStop is idempotent, and keeping it
        // costs one compare per scan — but is nulled so it fires once.
        for (Entry &entry : entries) {
            if (entry.token && entry.deadline <= now) {
                entry.token->requestStop();
                entry.token = nullptr;
                ++fired;
            }
        }
        entries.erase(std::remove_if(entries.begin(), entries.end(),
                                     [](const Entry &e) {
                                         return e.token == nullptr;
                                     }),
                      entries.end());
    }
}

} // namespace mtc
