#include "harness/sandbox.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <new>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "support/framing.h"
#include "support/log.h"
#include "support/process.h"

namespace mtc
{

namespace
{

const char *
lossSignalName(int sig)
{
    switch (sig) {
      case SIGSEGV:
        return "SIGSEGV";
      case SIGABRT:
        return "SIGABRT";
      case SIGBUS:
        return "SIGBUS";
      case SIGFPE:
        return "SIGFPE";
      case SIGILL:
        return "SIGILL";
      case SIGKILL:
        return "SIGKILL";
      case SIGXCPU:
        return "SIGXCPU";
      default:
        return "?";
    }
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // anonymous namespace

std::string
WorkerLoss::describe() const
{
    std::string text;
    switch (kind) {
      case WorkerLossKind::Crash:
        text = "worker killed by signal " + std::to_string(signal) +
            " (" + lossSignalName(signal) + ")";
        if (signal == SIGKILL)
            text += " — CPU hard limit or external OOM kill";
        break;
      case WorkerLossKind::CpuBudget:
        text = "worker exceeded its CPU budget (SIGXCPU)";
        break;
      case WorkerLossKind::OomBudget:
        text = "worker exhausted its memory budget "
               "(allocation failure)";
        break;
      case WorkerLossKind::ExitCode:
        text = "worker exited with code " + std::to_string(exitCode);
        break;
      case WorkerLossKind::HardKill:
        text = "worker SIGKILLed by the sandbox hard deadline "
               "(non-cooperative hang)";
        break;
      case WorkerLossKind::Protocol:
        text = "worker response stream violated framing";
        break;
    }
    if (!crashNote.empty())
        text += "; report: " + crashNote;
    return text;
}

SandboxPool::SandboxPool(SandboxConfig cfg_arg, WorkerFn worker)
    : cfg(cfg_arg), workerFn(std::move(worker))
{
    if (cfg.workers == 0)
        cfg.workers = 1;
    // A dead worker's request pipe raises SIGPIPE on the next
    // dispatch; we want the EPIPE errno path (classified loss), not
    // process death.
    oldSigpipe = ::signal(SIGPIPE, SIG_IGN);
    workers.resize(cfg.workers);
    for (unsigned i = 0; i < cfg.workers; ++i)
        spawnWorker(workers[i], i, 0);
}

SandboxPool::~SandboxPool()
{
    // Half-closing the send side is the shutdown signal: workers see
    // EOF at their next frame boundary and _exit(0).
    for (Worker &w : workers)
        w.link.closeSend();
    const auto grace_end = std::chrono::steady_clock::now() +
        std::chrono::milliseconds(2000);
    for (Worker &w : workers) {
        if (w.pid < 0)
            continue;
        ChildExit status;
        bool reaped = false;
        while (std::chrono::steady_clock::now() < grace_end) {
            try {
                if (tryWaitChild(w.pid, status)) {
                    reaped = true;
                    break;
                }
            } catch (const ProcessError &) {
                reaped = true; // nothing left to wait for
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        if (!reaped) {
            ::kill(w.pid, SIGKILL);
            try {
                waitChild(w.pid);
            } catch (const ProcessError &) {
            }
        }
        w.link.close();
        if (w.crashFd >= 0)
            ::close(w.crashFd);
    }
    ::signal(SIGPIPE, oldSigpipe);
}

void
SandboxPool::spawnWorker(Worker &slot, unsigned index,
                         unsigned generation)
{
    Pipe req, resp, crash;
    const pid_t pid = ::fork();
    if (pid < 0) {
        throw SandboxError(std::string("sandbox fork failed: ") +
                           std::strerror(errno));
    }
    if (pid == 0) {
        // --- worker child ---
#ifdef __linux__
        // Die with the parent: a SIGKILLed campaign must not leave an
        // orphan fleet burning CPU (the ci.sh kill-and-resume smoke
        // does exactly that to the parent).
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);
        if (::getppid() == 1)
            ::_exit(kWorkerExitInternal); // parent raced away already
#endif
        // Parent-only descriptors (the journal flock) must not ride
        // along into the worker: the lock has to die with the parent,
        // not with the slowest child the PDEATHSIG reaches.
        closeParentOnlyFds();
        // Drop every fd belonging to other workers: a sibling holding
        // a duplicate of worker X's request pipe would keep X from
        // ever seeing shutdown EOF. (Closing the forked copy of the
        // parent-side Transport only affects this child.)
        for (Worker &other : workers) {
            if (&other == &slot)
                continue;
            other.link.close();
            if (other.crashFd >= 0)
                ::close(other.crashFd);
        }
        req.closeWrite();
        resp.closeRead();
        crash.closeRead();
        installCrashReporter(crash.writeFd());
        try {
            applySandboxLimits(cfg.memLimitMb, cfg.cpuLimitS);
        } catch (const Error &) {
            ::_exit(kWorkerExitInternal);
        }
        WorkerEnv env;
        env.workerIndex = index;
        env.generation = generation;
        workerMain(Transport(req.releaseRead(), resp.releaseWrite(),
                             "sandbox worker link"),
                   env);
    }
    // --- parent ---
    req.closeRead();
    resp.closeWrite();
    crash.closeWrite();

    slot.pid = pid;
    slot.link = Transport(resp.releaseRead(), req.releaseWrite(),
                          "sandbox worker " + std::to_string(index));
    slot.crashFd = crash.releaseRead();
    setNonBlocking(slot.crashFd);
    slot.index = index;
    slot.generation = generation;
    slot.busy = false;
    slot.hardKilled = false;
}

[[noreturn]] void
SandboxPool::workerMain(Transport link, const WorkerEnv &env)
{
    for (;;) {
        std::vector<std::uint8_t> request;
        bool got = false;
        try {
            got = link.receive(request);
        } catch (const Error &) {
            ::_exit(kWorkerExitInternal);
        }
        if (!got)
            ::_exit(0); // clean shutdown: parent closed the pipe
        try {
            link.send(workerFn(request, env));
        } catch (const std::bad_alloc &) {
            ::_exit(kWorkerExitOom);
        } catch (...) {
            ::_exit(kWorkerExitInternal);
        }
    }
}

void
SandboxPool::respawnWorker(Worker &w)
{
    w.link.close();
    if (w.crashFd >= 0) {
        ::close(w.crashFd);
        w.crashFd = -1;
    }
    ++respawnCount;
    if (respawnCap && respawnCount > respawnCap) {
        throw SandboxError(
            "sandbox: worker fleet is dying faster than it completes "
            "units (" +
            std::to_string(respawnCount) +
            " respawns); aborting instead of thrashing");
    }
    spawnWorker(w, w.index, w.generation + 1);
}

std::string
SandboxPool::drainCrashNote(int fd)
{
    std::string note;
    char buf[512];
    for (;;) {
        // Nonblocking fd: EAGAIN (n < 0) means drained. readEintr
        // keeps a signal delivered mid-drain from truncating the note.
        const ssize_t n = readEintr(fd, buf, sizeof(buf));
        if (n <= 0)
            break;
        note.append(buf, static_cast<std::size_t>(n));
    }
    // One-line report: trim the trailing newline(s).
    while (!note.empty() &&
           (note.back() == '\n' || note.back() == '\r'))
        note.pop_back();
    return note;
}

WorkerLoss
SandboxPool::reapLoss(Worker &w, bool torn)
{
    // If the child is somehow still alive with a poisoned stream
    // (torn frame from a live writer = protocol bug), make it dead so
    // waitpid below terminates. A SIGKILL to an already-exited child
    // is harmless: the zombie keeps its original exit status.
    ::kill(w.pid, SIGKILL);
    ChildExit status;
    try {
        status = waitChild(w.pid);
    } catch (const ProcessError &) {
        // Unreapable (should not happen); report what we know.
    }
    w.pid = -1;

    WorkerLoss loss;
    loss.crashNote = drainCrashNote(w.crashFd);
    if (w.hardKilled) {
        loss.kind = WorkerLossKind::HardKill;
        loss.signal = SIGKILL;
    } else if (status.signaled) {
        loss.signal = status.signal;
        loss.kind = status.signal == SIGXCPU
            ? WorkerLossKind::CpuBudget
            : WorkerLossKind::Crash;
    } else if (status.exitCode == kWorkerExitOom) {
        loss.kind = WorkerLossKind::OomBudget;
        loss.exitCode = status.exitCode;
    } else if (status.exitCode != 0) {
        loss.kind = WorkerLossKind::ExitCode;
        loss.exitCode = status.exitCode;
    } else {
        // Clean exit mid-unit, or an intact-looking stream that tore:
        // either way the protocol was violated.
        loss.kind = WorkerLossKind::Protocol;
    }
    if (torn && loss.kind == WorkerLossKind::ExitCode &&
        status.exitCode == kWorkerExitInternal)
        loss.kind = WorkerLossKind::Protocol;
    return loss;
}

void
SandboxPool::run(std::size_t unit_count, const RequestFn &request,
                 const ResultFn &result, const LossFn &loss)
{
    respawnCap = static_cast<unsigned>(2 * unit_count) +
        4 * cfg.workers;

    std::deque<std::size_t> pending;
    for (std::size_t u = 0; u < unit_count; ++u)
        pending.push_back(u);
    std::size_t completed = 0;

    const auto dispatch = [&](Worker &w, std::size_t unit,
                              const std::vector<std::uint8_t> &req) {
        for (;;) {
            try {
                w.link.send(req);
                break;
            } catch (const FramingError &err) {
                // The worker died between units (or at startup);
                // nothing was dispatched to it, so this is churn, not
                // a unit loss.
                const WorkerLoss idle_loss = reapLoss(w, false);
                warn("sandbox: worker " + std::to_string(w.index) +
                     " died while idle: " + idle_loss.describe());
                respawnWorker(w);
            }
        }
        w.busy = true;
        w.unit = unit;
        w.hardKilled = false;
        if (cfg.hardDeadlineMs) {
            w.deadline = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(cfg.hardDeadlineMs);
        }
    };

    const auto handle_down = [&](Worker &w, bool torn) {
        const bool was_busy = w.busy;
        const std::size_t unit = w.unit;
        const WorkerLoss w_loss = reapLoss(w, torn);
        w.busy = false;
        respawnWorker(w);
        if (!was_busy) {
            warn("sandbox: worker " + std::to_string(w.index) +
                 " died while idle: " + w_loss.describe());
            return;
        }
        if (loss(unit, w_loss)) {
            pending.push_front(unit); // retry on the fresh worker
        } else {
            ++completed;
        }
    };

    while (completed < unit_count) {
        // Feed idle workers, in worker order, units in index order.
        while (!pending.empty()) {
            Worker *idle = nullptr;
            for (Worker &w : workers) {
                if (!w.busy) {
                    idle = &w;
                    break;
                }
            }
            if (!idle)
                break;
            const std::size_t unit = pending.front();
            pending.pop_front();
            const std::optional<std::vector<std::uint8_t>> req =
                request(unit);
            if (!req) {
                ++completed; // resolved without running
                continue;
            }
            dispatch(*idle, unit, *req);
        }
        if (completed >= unit_count)
            break;

        // Wait for a response, a death, or the nearest hard deadline.
        std::vector<pollfd> pfds;
        std::vector<Worker *> polled;
        int timeout_ms = -1;
        const auto now = std::chrono::steady_clock::now();
        for (Worker &w : workers) {
            pfds.push_back({w.link.receiveFd(), POLLIN, 0});
            polled.push_back(&w);
            if (w.busy && cfg.hardDeadlineMs) {
                const auto remain =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(w.deadline - now)
                        .count();
                const int ms =
                    remain < 0 ? 0 : static_cast<int>(remain) + 1;
                if (timeout_ms < 0 || ms < timeout_ms)
                    timeout_ms = ms;
            }
        }
        const int rc =
            ::poll(pfds.data(), pfds.size(), timeout_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throw SandboxError(std::string("sandbox poll failed: ") +
                               std::strerror(errno));
        }

        for (std::size_t i = 0; i < pfds.size(); ++i) {
            if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            Worker &w = *polled[i];
            std::vector<std::uint8_t> payload;
            bool got = false;
            bool torn = false;
            try {
                got = w.link.receive(payload);
            } catch (const FramingError &) {
                torn = true;
            }
            if (got) {
                w.busy = false;
                result(w.unit, payload);
                ++completed;
            } else {
                handle_down(w, torn);
            }
        }

        // Hard-deadline sweep: SIGKILL wedged workers; the resulting
        // EOF is picked up by the next poll round and classified as
        // HardKill via the flag.
        if (cfg.hardDeadlineMs) {
            const auto sweep_now = std::chrono::steady_clock::now();
            for (Worker &w : workers) {
                if (w.busy && !w.hardKilled &&
                    sweep_now >= w.deadline) {
                    warn("sandbox: worker " + std::to_string(w.index) +
                         " blew the hard deadline on unit " +
                         std::to_string(w.unit) + "; SIGKILLing it");
                    w.hardKilled = true;
                    ::kill(w.pid, SIGKILL);
                }
            }
        }
    }
}

} // namespace mtc
