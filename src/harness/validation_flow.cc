#include "harness/validation_flow.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "core/instr_plan.h"
#include "core/signature_accumulator.h"
#include "core/signature_codec.h"
#include "graph/cycle_report.h"
#include "graph/graph_builder.h"
#include "graph/po_edges.h"
#include "harness/check_pipeline.h"
#include "sim/executor.h"
#include "support/journal.h"
#include "support/log.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace mtc
{

namespace
{

/**
 * Device-side sorting cost of recording one iteration's signature
 * (the Figure 10 perturbation input). The instrumented test keeps its
 * signatures in a balanced BST, so one insert searches a tree of
 * @p unique_before nodes: floor(log2(u)) + 1 comparisons, 0 into an
 * empty tree. The host no longer pays this walk — the accumulator is
 * a hash table — but the model still charges it, because the paper's
 * sorting-overhead component describes the device, not the host.
 */
std::uint64_t
bstInsertComparisons(std::uint64_t unique_before)
{
    return unique_before ? std::bit_width(unique_before) : 0;
}

/**
 * Streaming decode→derive→check over the sorted unique signatures —
 * the shipping post-execution pipeline (streamCheck = true).
 *
 * The producer (calling thread) delta-decodes each signature against
 * the previous one (StreamDecoder), incrementally re-infers the ws
 * order for the changed threads (WsOrder::inferDelta), derives the
 * per-signature edge *diff* (EdgeDeriver), and runs the optional
 * conventional baseline on an incrementally maintained full edge
 * list. The consumer applies each diff to one stateful
 * CollectiveChecker. With a worker pool the consumer runs on a pool
 * worker behind a bounded channel (O(window) diffs in flight);
 * without one the check happens inline. Sharding semantics replicate
 * checkCollectiveSharded() exactly: at each shard boundary the
 * finished shard's stats are merged in shard order, the checker is
 * reset, and the boundary signature enters as an added-only full
 * snapshot — so verdicts and stats are bit-identical to the barrier
 * pipeline at every shard size, window, and thread count.
 *
 * Quarantine entries are appended in ascending signature order (the
 * producer walks the sorted sequence), and a decode fault leaves the
 * stream decoder in a defined state, so the quarantine list, kept
 * executions, and decoded sequence all match the barrier path.
 */
void
streamDecodeAndCheck(const TestProgram &program, MemoryModel model,
                     const SignatureCodec &codec, const FlowConfig &cfg,
                     const std::vector<SignatureCount> &unique,
                     ThreadPool *pool, PhaseProfiler &prof,
                     FlowResult &result,
                     std::vector<bool> &collective_verdicts,
                     std::vector<std::size_t> &decoded_unique_idx)
{
    using Clock = std::chrono::steady_clock;
    const auto ns_since = [](Clock::time_point t0) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count());
    };

    StreamDecoder stream(codec);
    WsOrder ws;
    EdgeDeriver deriver(program);
    EdgeDiff diff;
    EdgeDiff snap; // shard-boundary full snapshot

    CollectiveChecker checker(program, model);

    std::optional<ConventionalChecker> conventional;
    DynamicEdgeSet conv_edges;
    std::vector<Edge> conv_scratch;
    std::vector<bool> conventional_verdicts;
    if (cfg.runConventional) {
        conventional.emplace(program, model);
        conventional_verdicts.reserve(unique.size());
    }

    collective_verdicts.assign(unique.size(), false);

    std::uint64_t decode_ns = 0;
    std::uint64_t check_ns = 0;
    std::uint64_t conv_ns = 0;
    const std::size_t shard = cfg.shardSize;

    const auto check_item = [&](const EdgeDiff &d,
                                std::size_t decoded_idx,
                                bool start_shard) {
        const auto t0 = Clock::now();
        if (start_shard) {
            // Shard boundary: exactly checkCollectiveSharded()'s
            // fresh-checker-per-shard — merge the finished shard's
            // stats in shard order, restart from an empty graph.
            result.collective.merge(checker.stats());
            checker.reset();
        }
        collective_verdicts[decoded_idx] = checker.checkNextDiff(d);
        check_ns += ns_since(t0);
    };

    struct StreamItem
    {
        EdgeDiff diff;
        std::size_t decodedIdx = 0;
        bool startShard = false;
    };
    const bool overlapped = pool != nullptr && pool->size() > 1;
    std::optional<BoundedChannel<StreamItem>> channel;
    std::future<void> consumer_done;
    if (overlapped) {
        channel.emplace(cfg.streamWindow);
        auto done = std::make_shared<std::promise<void>>();
        consumer_done = done->get_future();
        // The single consumer keeps checking strictly sequential (each
        // diff applies to the previous graph), so any worker count
        // yields the same verdicts and stats as the inline path.
        pool->submit([&, done] {
            try {
                StreamItem item;
                while (channel->pop(item))
                    check_item(item.diff, item.decodedIdx,
                               item.startShard);
                done->set_value();
            } catch (...) {
                done->set_exception(std::current_exception());
                channel->poison();
            }
        });
    }

    for (std::size_t i = 0; i < unique.size(); ++i) {
        const auto t0 = Clock::now();
        const Execution *exec = nullptr;
        try {
            exec = &stream.next(unique[i].signature);
        } catch (const SignatureDecodeError &err) {
            result.fault.quarantined.push_back(
                {unique[i].signature, unique[i].iterations, err.kind(),
                 err.thread(), err.word(), err.what()});
            result.fault.quarantinedIterations += unique[i].iterations;
            decode_ns += ns_since(t0);
            continue;
        }
        const std::vector<std::uint32_t> &changed =
            stream.changedThreads();
        ws.inferDelta(program, *exec, changed.data(), changed.size());
        deriver.derive(*exec, ws, changed.data(), changed.size(),
                       diff);

        const std::size_t decoded_idx = decoded_unique_idx.size();
        decoded_unique_idx.push_back(i);
        if (cfg.keepExecutions)
            result.executions.push_back(*exec);

        const bool start_shard =
            shard > 0 && decoded_idx > 0 && decoded_idx % shard == 0;
        EdgeDiff *to_check = &diff;
        if (start_shard) {
            deriver.snapshotAdded(snap);
            snap.coherenceViolation = diff.coherenceViolation;
            to_check = &snap;
        }
        decode_ns += ns_since(t0);

        if (conventional) {
            // The baseline checks every execution's *full* graph; the
            // full edge list is maintained by one merge per diff
            // instead of a per-signature rebuild + sort.
            const auto t1 = Clock::now();
            applyEdgeDiff(conv_edges.edges, diff, conv_scratch);
            conv_edges.coherenceViolation = diff.coherenceViolation;
            conventional_verdicts.push_back(
                conventional->checkOne(conv_edges,
                                       result.conventional));
            conv_ns += ns_since(t1);
        }

        if (!overlapped) {
            check_item(*to_check, decoded_idx, start_shard);
        } else {
            StreamItem item;
            item.diff = std::move(*to_check);
            to_check->clear();
            item.decodedIdx = decoded_idx;
            item.startShard = start_shard;
            if (!channel->push(std::move(item)))
                break; // consumer died; rethrown below
        }
    }

    if (overlapped) {
        channel->close();
        consumer_done.get(); // joins the consumer; rethrows its error
    }
    // Final (or only) shard's accounting.
    result.collective.merge(checker.stats());

    collective_verdicts.resize(decoded_unique_idx.size());
    result.sliceReuses = stream.slicesReused();
    result.sliceDecodes = stream.slicesDecoded();
    result.decodeMs = static_cast<double>(decode_ns) / 1e6;
    result.collectiveMs = static_cast<double>(check_ns) / 1e6;
    result.conventionalMs = static_cast<double>(conv_ns) / 1e6;
    // Scopes cannot span the producer/consumer hand-off, so the
    // accrued per-item times are credited in one entry per phase.
    prof.record(Phase::Decode, decode_ns, 1);
    prof.record(Phase::Check, check_ns + conv_ns, 1);

    // The two checkers must agree; this is also asserted by the
    // property tests, but a production run cross-checks too.
    if (conventional && conventional_verdicts != collective_verdicts) {
        warn("checker disagreement on test " +
             program.config().name());
    }
}

} // anonymous namespace

void
checkSignatureStream(const TestProgram &program,
                     const SignatureCodec &codec, MemoryModel model,
                     const FlowConfig &cfg,
                     const std::vector<SignatureCount> &unique,
                     PhaseProfiler &prof, FlowResult &result,
                     std::vector<bool> &collective_verdicts,
                     std::vector<std::size_t> &decoded_unique_idx)
{
    // Worker pool for the in-test parallel stages (decode fan-out and
    // sharded checking). threads == 1 keeps everything on this thread.
    const unsigned flow_workers = ThreadPool::resolveThreads(cfg.threads);
    std::unique_ptr<ThreadPool> pool;
    if (flow_workers > 1)
        pool = std::make_unique<ThreadPool>(flow_workers);

    // --- Decode + observed-edge derivation + checking -----------------
    // Undecodable signatures — the expected outcome of readout faults
    // on suspect silicon — are quarantined with their classification
    // instead of aborting the flow (post-silicon rule: never let the
    // harness confuse "readout glitched" with "the DUT is buggy").
    std::vector<DynamicEdgeSet> edge_sets; // barrier pipeline only
    decoded_unique_idx.reserve(unique.size());

    if (cfg.streamCheck) {
        // Streaming pipeline: delta decode against the previous sorted
        // signature, incremental edge derivation, and (with a pool)
        // decode→check overlap behind a bounded window. Bit-identical
        // to the barrier pipeline below — see streamDecodeAndCheck.
        streamDecodeAndCheck(program, model, codec, cfg, unique,
                             pool.get(), prof, result,
                             collective_verdicts, decoded_unique_idx);
    } else {
        // Barrier pipeline (A/B baseline and equivalence oracle):
        // decode everything, then check everything, one full edge set
        // per unique signature held live at once.
        //
        // Each unique signature decodes independently, so the loop fans
        // out across the pool into per-index slots; the slots are
        // folded back in index (= ascending signature) order, which
        // makes the decoded sequence, the quarantine list, and the kept
        // executions bit-identical at any worker count.
        struct DecodeSlot
        {
            bool quarantined = false;
            DynamicEdgeSet edges;
            Execution execution; ///< populated only when keepExecutions
            QuarantinedSignature quarantine;
        };
        std::vector<DecodeSlot> decode_slots(unique.size());
        edge_sets.reserve(unique.size());
        {
            auto phase_scope = prof.scope(Phase::Decode);
            WallTimer timer;
            ScopedTimer scope(timer);
            const auto decode_one = [&](std::size_t i) {
                DecodeSlot &slot = decode_slots[i];
                // Per-worker decode buffers: only the per-slot edge set
                // (the product that outlives this loop) is allocated
                // per signature; the Execution and word scratch are
                // reused, as is dynamicEdges' inference workspace.
                thread_local Execution decoded;
                thread_local std::vector<std::uint64_t> word_scratch;
                try {
                    codec.decodeInto(unique[i].signature, decoded,
                                     word_scratch);
                    slot.edges = dynamicEdges(program, decoded);
                    if (cfg.keepExecutions)
                        slot.execution = decoded;
                } catch (const SignatureDecodeError &err) {
                    slot.quarantined = true;
                    slot.quarantine = {unique[i].signature,
                                       unique[i].iterations, err.kind(),
                                       err.thread(), err.word(),
                                       err.what()};
                }
            };
            if (pool) {
                pool->parallelFor(unique.size(), decode_one);
            } else {
                for (std::size_t i = 0; i < unique.size(); ++i)
                    decode_one(i);
            }

            for (std::size_t i = 0; i < unique.size(); ++i) {
                DecodeSlot &slot = decode_slots[i];
                if (slot.quarantined) {
                    result.fault.quarantined.push_back(
                        std::move(slot.quarantine));
                    result.fault.quarantinedIterations +=
                        unique[i].iterations;
                    continue;
                }
                edge_sets.push_back(std::move(slot.edges));
                decoded_unique_idx.push_back(i);
                if (cfg.keepExecutions)
                    result.executions.push_back(
                        std::move(slot.execution));
            }
            result.decodeMs = timer.milliseconds();
        }
        decode_slots.clear();

        // Collective checking (MTraceCheck), then the conventional
        // baseline over the same materialized edge sets.
        auto check_scope = prof.scope(Phase::Check);
        {
            WallTimer timer;
            ScopedTimer scope(timer);
            collective_verdicts = checkCollectiveSharded(
                program, model, edge_sets, cfg.shardSize, pool.get(),
                result.collective);
            result.collectiveMs = timer.milliseconds();
        }
        if (cfg.runConventional) {
            ConventionalChecker checker(program, model);
            WallTimer timer;
            ScopedTimer scope(timer);
            const std::vector<bool> verdicts =
                checker.check(edge_sets, result.conventional);
            result.conventionalMs = timer.milliseconds();

            // The two checkers must agree; this is also asserted by
            // the property tests, but a production run cross-checks.
            if (verdicts != collective_verdicts) {
                warn("checker disagreement on test " +
                     program.config().name());
            }
        }
    }
    result.fault.decodedSignatures = decoded_unique_idx.size();
    for (bool verdict : collective_verdicts)
        result.violatingSignatures += verdict ? 1 : 0;

    // --- Violation witness (Figure 13 style) ---------------------------
    if (result.violatingSignatures && result.violationWitness.empty()) {
        auto witness_scope = prof.scope(Phase::Check);
        for (std::size_t i = 0; i < decoded_unique_idx.size(); ++i) {
            if (!collective_verdicts[i])
                continue;
            // The streaming pipeline holds no full edge sets, so the
            // single witnessed execution is re-derived post hoc (one
            // cold decode — negligible against the checking sweep).
            DynamicEdgeSet witness_edges;
            const DynamicEdgeSet *edges_ptr = nullptr;
            if (!edge_sets.empty()) {
                edges_ptr = &edge_sets[i];
            } else {
                witness_edges = dynamicEdges(
                    program,
                    codec.decode(unique[decoded_unique_idx[i]]
                                     .signature));
                edges_ptr = &witness_edges;
            }
            ConstraintGraph graph(program.numOps());
            graph.addEdges(programOrderEdges(program, model));
            graph.addEdges(edges_ptr->edges);
            const auto cycle = findCycle(graph);
            if (!cycle.empty()) {
                result.violationWitness =
                    describeCycle(program, graph, cycle);
            } else {
                result.violationWitness =
                    "contradictory coherence (ws) constraints";
            }
            break;
        }
    }
}

ValidationFlow::ValidationFlow(FlowConfig cfg_arg) : cfg(cfg_arg) {}

FlowResult
ValidationFlow::runTest(const TestProgram &program)
{
    FlowResult result;
    PhaseProfiler prof(cfg.profile);

    // --- Instrumentation (static, once per test) ----------------------
    std::optional<PhaseProfiler::Scope> instrument_scope;
    instrument_scope.emplace(prof, Phase::Instrument);
    LoadValueAnalysis analysis(program, cfg.analysis);
    InstrumentationPlan plan(program, analysis);
    SignatureCodec codec(program, analysis, plan);

    result.intrusive = intrusiveness(program, plan);
    result.code = codeSize(program, analysis, plan);
    instrument_scope.reset();

    // --- Test execution loop ------------------------------------------
    std::unique_ptr<Platform> platform_holder;
    if (cfg.coherent) {
        platform_holder =
            std::make_unique<CoherentExecutor>(*cfg.coherent);
    } else {
        platform_holder =
            std::make_unique<OperationalExecutor>(cfg.exec);
    }
    Platform &platform = *platform_holder;
    PerturbationModel perturbation(program, analysis);

    // Faulty-readout model between the device and the host buffer.
    // The injector's stream is derived from both the fault seed and the
    // flow seed so every test of a campaign sees independent faults.
    std::vector<std::uint32_t> word_layout;
    word_layout.reserve(program.numThreads());
    for (std::uint32_t tid = 0; tid < program.numThreads(); ++tid)
        word_layout.push_back(plan.wordsForThread(tid));
    std::optional<FaultInjector> injector;
    if (cfg.fault.enabled()) {
        FaultConfig fault_cfg = cfg.fault;
        std::uint64_t mix = fault_cfg.seed ^ (cfg.seed * 0x9e3779b97f4a7c15ULL);
        fault_cfg.seed = splitMix64(mix);
        injector.emplace(fault_cfg, word_layout);
    }

    // Hot path: O(1) hash accumulation per iteration instead of the
    // old comparison-counting std::map (O(log u) signature compares
    // plus a node allocation per iteration). The BST sorting cost the
    // perturbation model needs is charged analytically per record.
    std::uint64_t sort_comparisons = 0;
    SignatureAccumulator signature_counts;
    const auto record_signature = [&](const Signature &signature,
                                      std::uint64_t copies) {
        sort_comparisons +=
            copies * bstInsertComparisons(signature_counts.uniqueCount());
        signature_counts.record(signature, copies);
    };

    // One batch arena plus one encode/readout buffer set serve the
    // whole loop: after the first batch warms their capacities, an
    // iteration performs no heap allocations (the tentpole property,
    // asserted by tests/hotpath_test.cpp). reuseArena=false rebuilds
    // the arena per batch — the pre-arena behavior, bit-identical but
    // allocation-heavy — for A/B measurement. The scalar `arena`
    // serves the confirmation re-executions further down.
    RunArena arena;
    BatchRunArena batch_arena;
    EncodeResult encoded;
    FaultedReadout readout;

    // Batched lockstep test loop. Every iteration owns an independent
    // RNG stream seeded from one master stream in iteration order, so
    // the dispatch width is purely operational: batch B consumes the
    // same per-iteration streams as batch 1, lanes are post-processed
    // (encode, fault injection, accumulation) in iteration order, and
    // every summary and digest is bit-identical at any width.
    Rng stream_master(cfg.seed);
    const std::uint32_t batch_width = cfg.batch ? cfg.batch : 32;
    std::vector<Rng> lane_rngs;
    std::vector<LaneStatus> lane_status;
    lane_rngs.reserve(batch_width);
    bool stop = false;
    for (std::uint64_t base = 0; base < cfg.iterations && !stop;) {
        const std::uint32_t lanes = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(batch_width,
                                    cfg.iterations - base));
        base += lanes;
        if (!cfg.reuseArena)
            batch_arena = BatchRunArena();
        {
            auto scope = prof.scope(Phase::BatchDispatch);
            lane_rngs.clear();
            for (std::uint32_t l = 0; l < lanes; ++l)
                lane_rngs.emplace_back(stream_master());
            lane_status.assign(lanes, LaneStatus::Completed);
        }
        {
            auto scope = prof.scope(Phase::Execute);
            platform.runBatchInto(program, lane_rngs.data(), lanes,
                                  batch_arena, cfg.cancel,
                                  lane_status.data());
        }
        for (std::uint32_t l = 0; l < lanes; ++l) {
            if (lane_status[l] == LaneStatus::Hung) {
                // What the scalar loop would have thrown mid-run; any
                // later lanes' results are discarded with the test,
                // exactly as if they had never been dispatched.
                throw TestHungError(batch_arena.hangMessage());
            }
            if (lane_status[l] == LaneStatus::Crashed) {
                // The paper's bug 3 crashes the whole simulation; by
                // default one deadlock ends this test's campaign, but
                // the recovery policy can grant retries so the rest
                // of the iteration budget still produces signatures.
                // Iteration streams are pre-derived, so a crashed
                // iteration costs exactly its own stream and the
                // retained-iteration set is batch-width-invariant.
                warn(std::string("platform crash: ") +
                     batch_arena.crashMessage(l));
                ++result.platformCrashes;
                if (result.fault.crashRetries <
                    cfg.recovery.crashRetries) {
                    ++result.fault.crashRetries;
                    continue;
                }
                stop = true;
                break;
            }
            ++result.iterationsRun;
            const Execution &execution = batch_arena.executions[l];

            try {
                {
                    auto scope = prof.scope(Phase::Encode);
                    codec.encodeInto(execution, encoded);
                    perturbation.record(execution, encoded,
                                        plan.totalWords());
                }
                auto scope = prof.scope(Phase::Accumulate);
                if (injector) {
                    injector->readInto(encoded.signature, readout);
                    result.fault.recordedIterations += readout.copies;
                    if (readout.copies)
                        record_signature(readout.signature,
                                         readout.copies);
                } else {
                    ++result.fault.recordedIterations;
                    record_signature(encoded.signature, 1);
                }
            } catch (const SignatureAssertError &err) {
                // The instrumented chain caught an impossible value
                // at runtime, before any graph checking.
                if (result.assertionFailures == 0)
                    result.violationWitness = err.what();
                ++result.assertionFailures;
            }
        }
    }
    if (injector)
        result.fault.injected = injector->counts();

    result.uniqueSignatures = signature_counts.uniqueCount();
    perturbation.recordSortComparisons(sort_comparisons);
    result.originalCycles = perturbation.originalCycles();
    result.computeCycles = perturbation.signatureComputationCycles();
    result.sortCycles = perturbation.signatureSortingCycles();
    result.computationOverhead = perturbation.computationOverhead();
    result.sortingOverhead = perturbation.sortingOverhead();

    // One final sort replaces the map's per-insert ordering: the
    // collective checker needs ascending-signature presentation order.
    std::vector<SignatureCount> unique;
    {
        auto scope = prof.scope(Phase::SortUnique);
        unique = signature_counts.takeSortedUnique();
    }

    // Fingerprint the observed-behavior set for the campaign journal:
    // chained FNV over the sorted (words, count) pairs, so any
    // divergence between a resumed unit and its original run — a
    // different signature, a different multiplicity, a different
    // order — changes the digest.
    {
        std::uint64_t digest = 0xcbf29ce484222325ull;
        for (const SignatureCount &entry : unique) {
            digest = fnv1a64(entry.signature.words.data(),
                             entry.signature.words.size() *
                                 sizeof(std::uint64_t),
                             digest);
            digest = fnv1a64(&entry.iterations,
                             sizeof(entry.iterations), digest);
        }
        result.signatureSetDigest = digest;
    }

    // Retain the stream for a trace dump before checking consumes it:
    // the copy carries undecodable entries too, so an offline re-check
    // quarantines them exactly as the inline pipeline is about to.
    if (cfg.keepSignatures)
        result.signatureStream = unique;

    // --- Decode + observed-edge derivation + checking -----------------
    // The whole post-execution stage is shared with the offline trace
    // checker (trace_check.h); only the confirmation protocol below
    // stays here, because it needs a live platform to re-execute on.
    const MemoryModel model =
        cfg.coherent ? cfg.coherent->model : cfg.exec.model;
    std::vector<std::size_t> decoded_unique_idx; // decoded -> unique
    std::vector<bool> collective_verdicts;
    checkSignatureStream(program, codec, model, cfg, unique, prof,
                         result, collective_verdicts,
                         decoded_unique_idx);

    // --- K-re-execution confirmation (fault-tolerant pipeline) --------
    // A cyclic signature read over a faulty path is ambiguous: the DUT
    // may have violated the MCM, or corruption may have decoded into a
    // different — coincidentally cyclic — valid execution. Re-execute
    // the test up to K times through the same faulty readout (real
    // silicon can only be re-read, not read cleanly). The discriminator
    // is *reproduction of the identical violating signature*: random
    // readout corruption essentially never recreates the same word
    // array in an independent re-execution, while the mostly-repeatable
    // platform re-hits genuine violating interleavings. A violation
    // that never reproduces is reclassified as transient readout
    // corruption. With injection off the readout cannot fabricate
    // violations and this stage is skipped entirely, keeping the
    // fault-free pipeline bit-identical.
    if (result.violatingSignatures && injector &&
        cfg.recovery.confirmationRuns > 0) {
        auto confirm_scope = prof.scope(Phase::Confirm);
        std::set<Signature> violating_set;
        for (std::size_t i = 0; i < decoded_unique_idx.size(); ++i) {
            if (collective_verdicts[i])
                violating_set.insert(
                    unique[decoded_unique_idx[i]].signature);
        }

        const std::uint64_t confirm_iters =
            cfg.recovery.confirmationIterations
            ? cfg.recovery.confirmationIterations
            : std::min<std::uint64_t>(cfg.iterations, 256);
        bool confirmed = false;
        bool confirmation_crashed_out = false;

        // Attempt-counted loop rather than a plain for-K: a
        // confirmation re-execution that crashes proves nothing about
        // reproduction, so it must not silently consume one of the K
        // discriminating runs (the old behavior: a crashed run read as
        // "not reproduced", biasing real violations towards the
        // transient-corruption verdict). Instead a crash draws on the
        // same crash-retry budget as the test loop and is replaced by
        // a fresh attempt; only when the budget is exhausted is the
        // remaining confirmation abandoned. The seed mix is keyed by
        // the attempt number, so a crash-free confirmation replays the
        // exact streams of the old k-indexed loop.
        unsigned completed_runs = 0;
        unsigned attempt = 0;
        while (completed_runs < cfg.recovery.confirmationRuns &&
               !confirmed) {
            ++attempt;
            ++result.fault.confirmationRunsUsed;
            std::uint64_t mix =
                cfg.seed ^ (0xC0F1A5EDull + 0x9e3779b9ull * attempt);
            Rng confirm_rng(splitMix64(mix));
            FaultConfig confirm_fault = cfg.fault;
            confirm_fault.seed = splitMix64(mix);
            FaultInjector confirm_injector(confirm_fault, word_layout);

            bool crashed = false;
            for (std::uint64_t iter = 0;
                 iter < confirm_iters && !confirmed; ++iter) {
                if (!cfg.reuseArena)
                    arena = RunArena();
                try {
                    platform.runInto(program, confirm_rng, arena,
                                     cfg.cancel);
                } catch (const ProtocolDeadlockError &) {
                    crashed = true; // a wedged run proves nothing
                    break;
                }
                try {
                    codec.encodeInto(arena.execution, encoded);
                    confirm_injector.readInto(encoded.signature,
                                              readout);
                    if (!readout.dropped() &&
                        violating_set.count(readout.signature))
                        confirmed = true;
                } catch (const SignatureAssertError &) {
                    // The instrumented chain re-caught an impossible
                    // value: violating behavior reproduced.
                    confirmed = true;
                }
            }

            if (crashed && !confirmed) {
                if (result.fault.crashRetries <
                    cfg.recovery.crashRetries) {
                    ++result.fault.crashRetries;
                    continue; // replacement run; K not consumed
                }
                confirmation_crashed_out = true;
                break;
            }
            ++completed_runs;
        }

        if (confirmed) {
            result.fault.confirmedViolations =
                result.violatingSignatures;
        } else {
            result.fault.transientViolations =
                result.violatingSignatures;
            result.violatingSignatures = 0;
            result.fault.note =
                "violating signature(s) not reproduced in " +
                std::to_string(result.fault.confirmationRunsUsed) +
                " re-execution(s); reclassified as transient readout "
                "corruption";
            if (confirmation_crashed_out) {
                result.fault.note +=
                    "; confirmation cut short by a platform crash "
                    "(crash-retry budget exhausted)";
            }
            if (!result.violationWitness.empty() &&
                !result.assertionFailures) {
                result.fault.note +=
                    "; unconfirmed witness: " + result.violationWitness;
                result.violationWitness.clear();
            }
        }
    } else if (result.violatingSignatures) {
        // No faulty readout (or confirmation disabled): every cyclic
        // signature is a confirmed violation, as in the base pipeline.
        result.fault.confirmedViolations = result.violatingSignatures;
    }

    result.profile = prof.take();
    return result;
}

} // namespace mtc
