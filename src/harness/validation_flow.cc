#include "harness/validation_flow.h"

#include <map>
#include <memory>

#include "core/instr_plan.h"
#include "core/signature_codec.h"
#include "graph/cycle_report.h"
#include "graph/graph_builder.h"
#include "graph/po_edges.h"
#include "sim/executor.h"
#include "support/log.h"
#include "support/timer.h"

namespace mtc
{

namespace
{

/** Signature ordering that counts comparisons (BST sorting cost). */
struct CountingLess
{
    std::uint64_t *counter = nullptr;

    bool
    operator()(const Signature &a, const Signature &b) const
    {
        ++*counter;
        return a < b;
    }
};

} // anonymous namespace

ValidationFlow::ValidationFlow(FlowConfig cfg_arg) : cfg(cfg_arg) {}

FlowResult
ValidationFlow::runTest(const TestProgram &program)
{
    FlowResult result;

    // --- Instrumentation (static, once per test) ----------------------
    LoadValueAnalysis analysis(program, cfg.analysis);
    InstrumentationPlan plan(program, analysis);
    SignatureCodec codec(program, analysis, plan);

    result.intrusive = intrusiveness(program, plan);
    result.code = codeSize(program, analysis, plan);

    // --- Test execution loop ------------------------------------------
    std::unique_ptr<Platform> platform_holder;
    if (cfg.coherent) {
        platform_holder =
            std::make_unique<CoherentExecutor>(*cfg.coherent);
    } else {
        platform_holder =
            std::make_unique<OperationalExecutor>(cfg.exec);
    }
    Platform &platform = *platform_holder;
    Rng rng(cfg.seed);
    PerturbationModel perturbation(program, analysis);

    std::uint64_t sort_comparisons = 0;
    std::map<Signature, std::uint64_t, CountingLess> signature_counts(
        CountingLess{&sort_comparisons});

    for (std::uint64_t iter = 0; iter < cfg.iterations; ++iter) {
        Execution execution;
        try {
            execution = platform.run(program, rng);
        } catch (const ProtocolDeadlockError &err) {
            // The paper's bug 3 crashes the whole simulation; one
            // deadlock ends this test's campaign.
            warn(std::string("platform crash: ") + err.what());
            ++result.platformCrashes;
            break;
        }
        ++result.iterationsRun;

        try {
            EncodeResult encoded = codec.encode(execution);
            perturbation.record(execution, encoded, plan.totalWords());
            ++signature_counts[std::move(encoded.signature)];
        } catch (const SignatureAssertError &err) {
            // The instrumented chain caught an impossible value at
            // runtime, before any graph checking.
            if (result.assertionFailures == 0)
                result.violationWitness = err.what();
            ++result.assertionFailures;
        }
    }

    result.uniqueSignatures = signature_counts.size();
    perturbation.recordSortComparisons(sort_comparisons);
    result.originalCycles = perturbation.originalCycles();
    result.computeCycles = perturbation.signatureComputationCycles();
    result.sortCycles = perturbation.signatureSortingCycles();
    result.computationOverhead = perturbation.computationOverhead();
    result.sortingOverhead = perturbation.sortingOverhead();

    // --- Decode + observed-edge derivation (shared by checkers) -------
    std::vector<DynamicEdgeSet> edge_sets;
    edge_sets.reserve(signature_counts.size());
    {
        WallTimer timer;
        ScopedTimer scope(timer);
        for (const auto &[signature, count] : signature_counts) {
            (void)count;
            Execution decoded = codec.decode(signature);
            edge_sets.push_back(dynamicEdges(program, decoded));
            if (cfg.keepExecutions)
                result.executions.push_back(std::move(decoded));
        }
        result.decodeMs = timer.milliseconds();
    }

    // --- Collective checking (MTraceCheck) -----------------------------
    const MemoryModel model =
        cfg.coherent ? cfg.coherent->model : cfg.exec.model;
    std::vector<bool> collective_verdicts;
    {
        CollectiveChecker checker(program, model);
        WallTimer timer;
        ScopedTimer scope(timer);
        collective_verdicts = checker.check(edge_sets);
        result.collectiveMs = timer.milliseconds();
        result.collective = checker.stats();
    }
    for (bool verdict : collective_verdicts)
        result.violatingSignatures += verdict ? 1 : 0;

    // --- Conventional checking (baseline) ------------------------------
    if (cfg.runConventional) {
        ConventionalChecker checker(program, model);
        WallTimer timer;
        ScopedTimer scope(timer);
        const std::vector<bool> verdicts =
            checker.check(edge_sets, result.conventional);
        result.conventionalMs = timer.milliseconds();

        // The two checkers must agree; this is also asserted by the
        // property tests, but a production run cross-checks too.
        if (verdicts != collective_verdicts) {
            warn("checker disagreement on test " +
                 program.config().name());
        }
    }

    // --- Violation witness (Figure 13 style) ---------------------------
    if (result.violatingSignatures && result.violationWitness.empty()) {
        for (std::size_t i = 0; i < edge_sets.size(); ++i) {
            if (!collective_verdicts[i])
                continue;
            ConstraintGraph graph(program.numOps());
            graph.addEdges(programOrderEdges(program, model));
            graph.addEdges(edge_sets[i].edges);
            const auto cycle = findCycle(graph);
            if (!cycle.empty()) {
                result.violationWitness =
                    describeCycle(program, graph, cycle);
            } else {
                result.violationWitness =
                    "contradictory coherence (ws) constraints";
            }
            break;
        }
    }

    return result;
}

} // namespace mtc
