#include "harness/validation_flow.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "core/instr_plan.h"
#include "core/signature_codec.h"
#include "graph/cycle_report.h"
#include "graph/graph_builder.h"
#include "graph/po_edges.h"
#include "sim/executor.h"
#include "support/log.h"
#include "support/timer.h"

namespace mtc
{

namespace
{

/** Signature ordering that counts comparisons (BST sorting cost). */
struct CountingLess
{
    std::uint64_t *counter = nullptr;

    bool
    operator()(const Signature &a, const Signature &b) const
    {
        ++*counter;
        return a < b;
    }
};

} // anonymous namespace

ValidationFlow::ValidationFlow(FlowConfig cfg_arg) : cfg(cfg_arg) {}

FlowResult
ValidationFlow::runTest(const TestProgram &program)
{
    FlowResult result;

    // --- Instrumentation (static, once per test) ----------------------
    LoadValueAnalysis analysis(program, cfg.analysis);
    InstrumentationPlan plan(program, analysis);
    SignatureCodec codec(program, analysis, plan);

    result.intrusive = intrusiveness(program, plan);
    result.code = codeSize(program, analysis, plan);

    // --- Test execution loop ------------------------------------------
    std::unique_ptr<Platform> platform_holder;
    if (cfg.coherent) {
        platform_holder =
            std::make_unique<CoherentExecutor>(*cfg.coherent);
    } else {
        platform_holder =
            std::make_unique<OperationalExecutor>(cfg.exec);
    }
    Platform &platform = *platform_holder;
    Rng rng(cfg.seed);
    PerturbationModel perturbation(program, analysis);

    // Faulty-readout model between the device and the host buffer.
    // The injector's stream is derived from both the fault seed and the
    // flow seed so every test of a campaign sees independent faults.
    std::vector<std::uint32_t> word_layout;
    word_layout.reserve(program.numThreads());
    for (std::uint32_t tid = 0; tid < program.numThreads(); ++tid)
        word_layout.push_back(plan.wordsForThread(tid));
    std::optional<FaultInjector> injector;
    if (cfg.fault.enabled()) {
        FaultConfig fault_cfg = cfg.fault;
        std::uint64_t mix = fault_cfg.seed ^ (cfg.seed * 0x9e3779b97f4a7c15ULL);
        fault_cfg.seed = splitMix64(mix);
        injector.emplace(fault_cfg, word_layout);
    }

    std::uint64_t sort_comparisons = 0;
    std::map<Signature, std::uint64_t, CountingLess> signature_counts(
        CountingLess{&sort_comparisons});

    for (std::uint64_t iter = 0; iter < cfg.iterations; ++iter) {
        Execution execution;
        try {
            execution = platform.run(program, rng);
        } catch (const ProtocolDeadlockError &err) {
            // The paper's bug 3 crashes the whole simulation; by
            // default one deadlock ends this test's campaign, but the
            // recovery policy can grant reseeded retries so the rest
            // of the iteration budget still produces signatures.
            warn(std::string("platform crash: ") + err.what());
            ++result.platformCrashes;
            if (result.fault.crashRetries < cfg.recovery.crashRetries) {
                ++result.fault.crashRetries;
                std::uint64_t reseed =
                    cfg.seed + 0x5bd1e995u * result.fault.crashRetries;
                rng = Rng(splitMix64(reseed));
                continue;
            }
            break;
        }
        ++result.iterationsRun;

        try {
            EncodeResult encoded = codec.encode(execution);
            perturbation.record(execution, encoded, plan.totalWords());
            if (injector) {
                const FaultedReadout readout =
                    injector->read(encoded.signature);
                result.fault.recordedIterations += readout.copies;
                for (unsigned c = 0; c < readout.copies; ++c)
                    ++signature_counts[readout.signature];
            } else {
                ++result.fault.recordedIterations;
                ++signature_counts[std::move(encoded.signature)];
            }
        } catch (const SignatureAssertError &err) {
            // The instrumented chain caught an impossible value at
            // runtime, before any graph checking.
            if (result.assertionFailures == 0)
                result.violationWitness = err.what();
            ++result.assertionFailures;
        }
    }
    if (injector)
        result.fault.injected = injector->counts();

    result.uniqueSignatures = signature_counts.size();
    perturbation.recordSortComparisons(sort_comparisons);
    result.originalCycles = perturbation.originalCycles();
    result.computeCycles = perturbation.signatureComputationCycles();
    result.sortCycles = perturbation.signatureSortingCycles();
    result.computationOverhead = perturbation.computationOverhead();
    result.sortingOverhead = perturbation.sortingOverhead();

    // --- Decode + observed-edge derivation (shared by checkers) -------
    // Undecodable signatures — the expected outcome of readout faults
    // on suspect silicon — are quarantined with their classification
    // instead of aborting the flow (post-silicon rule: never let the
    // harness confuse "readout glitched" with "the DUT is buggy").
    std::vector<DynamicEdgeSet> edge_sets;
    edge_sets.reserve(signature_counts.size());
    std::vector<const Signature *> decoded_signatures; // parallel
    decoded_signatures.reserve(signature_counts.size());
    {
        WallTimer timer;
        ScopedTimer scope(timer);
        for (const auto &[signature, count] : signature_counts) {
            try {
                Execution decoded = codec.decode(signature);
                edge_sets.push_back(dynamicEdges(program, decoded));
                decoded_signatures.push_back(&signature);
                if (cfg.keepExecutions)
                    result.executions.push_back(std::move(decoded));
            } catch (const SignatureDecodeError &err) {
                result.fault.quarantined.push_back(
                    {signature, count, err.kind(), err.thread(),
                     err.word(), err.what()});
                result.fault.quarantinedIterations += count;
            }
        }
        result.decodeMs = timer.milliseconds();
    }
    result.fault.decodedSignatures = edge_sets.size();

    // --- Collective checking (MTraceCheck) -----------------------------
    const MemoryModel model =
        cfg.coherent ? cfg.coherent->model : cfg.exec.model;
    std::vector<bool> collective_verdicts;
    {
        CollectiveChecker checker(program, model);
        WallTimer timer;
        ScopedTimer scope(timer);
        collective_verdicts = checker.check(edge_sets);
        result.collectiveMs = timer.milliseconds();
        result.collective = checker.stats();
    }
    for (bool verdict : collective_verdicts)
        result.violatingSignatures += verdict ? 1 : 0;

    // --- Conventional checking (baseline) ------------------------------
    if (cfg.runConventional) {
        ConventionalChecker checker(program, model);
        WallTimer timer;
        ScopedTimer scope(timer);
        const std::vector<bool> verdicts =
            checker.check(edge_sets, result.conventional);
        result.conventionalMs = timer.milliseconds();

        // The two checkers must agree; this is also asserted by the
        // property tests, but a production run cross-checks too.
        if (verdicts != collective_verdicts) {
            warn("checker disagreement on test " +
                 program.config().name());
        }
    }

    // --- Violation witness (Figure 13 style) ---------------------------
    if (result.violatingSignatures && result.violationWitness.empty()) {
        for (std::size_t i = 0; i < edge_sets.size(); ++i) {
            if (!collective_verdicts[i])
                continue;
            ConstraintGraph graph(program.numOps());
            graph.addEdges(programOrderEdges(program, model));
            graph.addEdges(edge_sets[i].edges);
            const auto cycle = findCycle(graph);
            if (!cycle.empty()) {
                result.violationWitness =
                    describeCycle(program, graph, cycle);
            } else {
                result.violationWitness =
                    "contradictory coherence (ws) constraints";
            }
            break;
        }
    }

    // --- K-re-execution confirmation (fault-tolerant pipeline) --------
    // A cyclic signature read over a faulty path is ambiguous: the DUT
    // may have violated the MCM, or corruption may have decoded into a
    // different — coincidentally cyclic — valid execution. Re-execute
    // the test up to K times through the same faulty readout (real
    // silicon can only be re-read, not read cleanly). The discriminator
    // is *reproduction of the identical violating signature*: random
    // readout corruption essentially never recreates the same word
    // array in an independent re-execution, while the mostly-repeatable
    // platform re-hits genuine violating interleavings. A violation
    // that never reproduces is reclassified as transient readout
    // corruption. With injection off the readout cannot fabricate
    // violations and this stage is skipped entirely, keeping the
    // fault-free pipeline bit-identical.
    if (result.violatingSignatures && injector &&
        cfg.recovery.confirmationRuns > 0) {
        std::set<Signature> violating_set;
        for (std::size_t i = 0; i < edge_sets.size(); ++i) {
            if (collective_verdicts[i])
                violating_set.insert(*decoded_signatures[i]);
        }

        const std::uint64_t confirm_iters =
            cfg.recovery.confirmationIterations
            ? cfg.recovery.confirmationIterations
            : std::min<std::uint64_t>(cfg.iterations, 256);
        bool confirmed = false;

        for (unsigned k = 0;
             k < cfg.recovery.confirmationRuns && !confirmed; ++k) {
            ++result.fault.confirmationRunsUsed;
            std::uint64_t mix =
                cfg.seed ^ (0xC0F1A5EDull + 0x9e3779b9ull * (k + 1));
            Rng confirm_rng(splitMix64(mix));
            FaultConfig confirm_fault = cfg.fault;
            confirm_fault.seed = splitMix64(mix);
            FaultInjector confirm_injector(confirm_fault, word_layout);

            for (std::uint64_t iter = 0;
                 iter < confirm_iters && !confirmed; ++iter) {
                Execution execution;
                try {
                    execution = platform.run(program, confirm_rng);
                } catch (const ProtocolDeadlockError &) {
                    break; // a wedged re-execution proves nothing
                }
                try {
                    EncodeResult encoded = codec.encode(execution);
                    const FaultedReadout readout =
                        confirm_injector.read(encoded.signature);
                    if (!readout.dropped() &&
                        violating_set.count(readout.signature))
                        confirmed = true;
                } catch (const SignatureAssertError &) {
                    // The instrumented chain re-caught an impossible
                    // value: violating behavior reproduced.
                    confirmed = true;
                }
            }
        }

        if (confirmed) {
            result.fault.confirmedViolations =
                result.violatingSignatures;
        } else {
            result.fault.transientViolations =
                result.violatingSignatures;
            result.violatingSignatures = 0;
            result.fault.note =
                "violating signature(s) not reproduced in " +
                std::to_string(result.fault.confirmationRunsUsed) +
                " re-execution(s); reclassified as transient readout "
                "corruption";
            if (!result.violationWitness.empty() &&
                !result.assertionFailures) {
                result.fault.note +=
                    "; unconfirmed witness: " + result.violationWitness;
                result.violationWitness.clear();
            }
        }
    } else if (result.violatingSignatures) {
        // No faulty readout (or confirmation disabled): every cyclic
        // signature is a confirmed violation, as in the base pipeline.
        result.fault.confirmedViolations = result.violatingSignatures;
    }

    return result;
}

} // namespace mtc
