#include "harness/campaign.h"

#include <cerrno>
#include <cstdlib>

#include "sim/executor.h"
#include "support/log.h"
#include "support/rng.h"
#include "testgen/generator.h"

namespace mtc
{

/**
 * Parse an environment override strictly. strtoull's permissiveness is
 * a campaign killer: MTC_ITERATIONS=abc silently became 0 iterations
 * (an entire campaign measuring nothing), so non-numeric, negative,
 * out-of-range and — where meaningless — zero values all fail fast
 * with the variable's name.
 */
std::uint64_t
parseEnvCount(const char *name, const char *text, bool allow_zero)
{
    if (*text == '\0' || *text == '-' || *text == '+') {
        throw ConfigError(std::string(name) +
                          " must be an unsigned integer, got \"" +
                          text + "\"");
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE) {
        throw ConfigError(std::string(name) +
                          " must be an unsigned integer, got \"" +
                          text + "\"");
    }
    if (!allow_zero && value == 0) {
        throw ConfigError(std::string(name) +
                          " must be non-zero (a zero value would run "
                          "an empty campaign)");
    }
    return value;
}

CampaignConfig
CampaignConfig::fromEnv(CampaignConfig defaults)
{
    if (const char *iters = std::getenv("MTC_ITERATIONS"))
        defaults.iterations =
            parseEnvCount("MTC_ITERATIONS", iters, false);
    if (const char *tests = std::getenv("MTC_TESTS"))
        defaults.testsPerConfig = static_cast<unsigned>(
            parseEnvCount("MTC_TESTS", tests, false));
    if (const char *seed = std::getenv("MTC_SEED"))
        defaults.seed = parseEnvCount("MTC_SEED", seed, true);
    return defaults;
}

CampaignConfig
CampaignConfig::fromEnv()
{
    return fromEnv(CampaignConfig{});
}

ExecutorConfig
platformFor(const TestConfig &cfg, PlatformVariant variant)
{
    ExecutorConfig exec = variant == PlatformVariant::Linux
        ? osConfig(cfg.isa)
        : bareMetalConfig(cfg.isa);
    return exec;
}

ConfigSummary
runConfig(const TestConfig &cfg, const CampaignConfig &campaign)
{
    ConfigSummary summary;
    summary.cfg = cfg;

    FlowConfig flow_cfg;
    flow_cfg.iterations = campaign.iterations;
    flow_cfg.exec = platformFor(cfg, campaign.variant);
    flow_cfg.runConventional = campaign.runConventional;
    flow_cfg.fault = campaign.fault;
    flow_cfg.recovery = campaign.recovery;

    // Tests are derived from one seed per configuration so every
    // figure sees the same test programs (the paper reuses one set of
    // generated tests across experiments for fairness).
    Rng seeder(campaign.seed ^
               (static_cast<std::uint64_t>(cfg.numThreads) << 40) ^
               (static_cast<std::uint64_t>(cfg.opsPerThread) << 20) ^
               (static_cast<std::uint64_t>(cfg.numLocations) << 8) ^
               static_cast<std::uint64_t>(cfg.wordsPerLine) ^
               (cfg.isa == Isa::X86 ? 0x5a5a5a5aull : 0ull));

    std::uint64_t complete = 0, no_resort = 0, incremental = 0;
    std::uint64_t graphs = 0;
    double affected_weighted = 0.0;
    std::uint64_t affected_count = 0;

    for (unsigned t = 0; t < campaign.testsPerConfig; ++t) {
        // A test that dies on an internal error (poisoned generation
        // seed, wedged platform, harness bug surfacing under fault
        // injection) is retried with fresh seeds; after the budget it
        // is recorded as failed and the campaign moves on — one bad
        // test must never take down a whole campaign.
        FlowResult result;
        bool test_ok = false;
        for (unsigned attempt = 0;
             attempt <= campaign.testRetries && !test_ok; ++attempt) {
            if (attempt)
                ++summary.testRetriesUsed;
            try {
                const TestProgram program = generateTest(cfg, seeder());
                flow_cfg.seed = seeder();
                ValidationFlow flow(flow_cfg);
                result = flow.runTest(program);
                test_ok = true;
            } catch (const Error &err) {
                warn("test " + std::to_string(t) + " of " + cfg.name() +
                     " failed (attempt " + std::to_string(attempt + 1) +
                     "): " + err.what());
            }
        }
        if (!test_ok) {
            ++summary.failedTests;
            continue;
        }

        ++summary.tests;
        summary.avgUniqueSignatures += result.uniqueSignatures;
        summary.avgSignatureBytes += result.intrusive.signatureBytes;
        summary.avgUnrelatedAccesses +=
            result.intrusive.normalizedUnrelated();
        summary.avgCodeRatio += result.code.ratio();
        summary.avgOriginalKB += result.code.originalBytes / 1024.0;
        summary.avgInstrumentedKB +=
            result.code.instrumentedBytes / 1024.0;

        summary.collectiveMs += result.collectiveMs;
        summary.conventionalMs += result.conventionalMs;
        summary.collectiveWork += result.collective.verticesProcessed +
            result.collective.edgesProcessed;
        summary.conventionalWork +=
            result.conventional.verticesProcessed +
            result.conventional.edgesProcessed;

        complete += result.collective.completeSorts;
        no_resort += result.collective.noResortNeeded;
        incremental += result.collective.incrementalResorts;
        graphs += result.collective.graphsChecked;
        affected_weighted +=
            result.collective.affectedFraction.sum();
        affected_count += result.collective.affectedFraction.count();

        summary.avgComputationOverhead += result.computationOverhead;
        summary.avgSortingOverhead += result.sortingOverhead;
        summary.violations += result.violatingSignatures +
            result.assertionFailures + result.platformCrashes;

        summary.injected += result.fault.injected;
        summary.quarantinedSignatures += result.fault.quarantinedCount();
        summary.quarantinedIterations += result.fault.quarantinedIterations;
        summary.confirmedViolations += result.fault.confirmedViolations;
        summary.transientViolations += result.fault.transientViolations;
        summary.crashRetries += result.fault.crashRetries;
    }

    const double n = summary.tests ? summary.tests : 1;
    summary.avgUniqueSignatures /= n;
    summary.avgSignatureBytes /= n;
    summary.avgUnrelatedAccesses /= n;
    summary.avgCodeRatio /= n;
    summary.avgOriginalKB /= n;
    summary.avgInstrumentedKB /= n;
    summary.avgComputationOverhead /= n;
    summary.avgSortingOverhead /= n;

    if (graphs) {
        summary.fracComplete = static_cast<double>(complete) / graphs;
        summary.fracNoResort = static_cast<double>(no_resort) / graphs;
        summary.fracIncremental =
            static_cast<double>(incremental) / graphs;
    }
    if (affected_count) {
        summary.avgAffectedFraction =
            affected_weighted / static_cast<double>(affected_count);
    }
    return summary;
}

std::vector<ConfigSummary>
runCampaign(const std::vector<TestConfig> &configs,
            const CampaignConfig &campaign)
{
    std::vector<ConfigSummary> summaries;
    summaries.reserve(configs.size());
    for (const TestConfig &cfg : configs) {
        // Degraded-summary path: a configuration whose every test is
        // poisoned (runConfig itself threw) yields a marked summary
        // instead of unwinding the remaining configurations.
        try {
            summaries.push_back(runConfig(cfg, campaign));
        } catch (const Error &err) {
            warn("configuration " + cfg.name() +
                 " failed, continuing campaign: " + err.what());
            ConfigSummary degraded;
            degraded.cfg = cfg;
            degraded.degraded = true;
            degraded.error = err.what();
            summaries.push_back(std::move(degraded));
        }
    }
    return summaries;
}

} // namespace mtc
