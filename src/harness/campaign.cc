#include "harness/campaign.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "dist/coordinator.h"
#include "harness/campaign_journal.h"
#include "harness/campaign_plan.h"
#include "harness/dist_campaign.h"
#include "harness/sandbox.h"
#include "harness/trace_check.h"
#include "harness/watchdog.h"
#include "sim/executor.h"
#include "support/hmac.h"
#include "support/log.h"
#include "support/process.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "testgen/generator.h"

namespace mtc
{

/**
 * Parse an environment override strictly. strtoull's permissiveness is
 * a campaign killer: MTC_ITERATIONS=abc silently became 0 iterations
 * (an entire campaign measuring nothing), so non-numeric, negative,
 * out-of-range and — where meaningless — zero values all fail fast
 * with the variable's name.
 */
std::uint64_t
parseEnvCount(const char *name, const char *text, bool allow_zero)
{
    if (*text == '\0' || *text == '-' || *text == '+') {
        throw ConfigError(std::string(name) +
                          " must be an unsigned integer, got \"" +
                          text + "\"");
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE) {
        throw ConfigError(std::string(name) +
                          " must be an unsigned integer, got \"" +
                          text + "\"");
    }
    if (!allow_zero && value == 0) {
        throw ConfigError(std::string(name) +
                          " must be non-zero (a zero value would run "
                          "an empty campaign)");
    }
    return value;
}

double
parseEnvRate(const char *name, const char *text)
{
    if (*text == '\0' || *text == '-' || *text == '+') {
        throw ConfigError(std::string(name) +
                          " must be a fraction in [0, 1], got \"" +
                          text + "\"");
    }
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE ||
        !(value >= 0.0 && value <= 1.0)) {
        throw ConfigError(std::string(name) +
                          " must be a fraction in [0, 1], got \"" +
                          text + "\"");
    }
    return value;
}

CampaignConfig
CampaignConfig::fromEnv(CampaignConfig defaults)
{
    if (const char *iters = std::getenv("MTC_ITERATIONS"))
        defaults.iterations =
            parseEnvCount("MTC_ITERATIONS", iters, false);
    if (const char *tests = std::getenv("MTC_TESTS"))
        defaults.testsPerConfig = static_cast<unsigned>(
            parseEnvCount("MTC_TESTS", tests, false));
    if (const char *seed = std::getenv("MTC_SEED"))
        defaults.seed = parseEnvCount("MTC_SEED", seed, true);
    // Zero is meaningful for both parallelism knobs: MTC_THREADS=0
    // asks for every hardware thread, MTC_SHARD_SIZE=0 disables
    // sharding.
    if (const char *threads = std::getenv("MTC_THREADS"))
        defaults.threads = static_cast<unsigned>(
            parseEnvCount("MTC_THREADS", threads, true));
    // MTC_BATCH=0 defers to the flow's default width; any width is
    // purely operational (bit-identical summaries).
    if (const char *batch = std::getenv("MTC_BATCH"))
        defaults.batch = static_cast<std::uint32_t>(
            parseEnvCount("MTC_BATCH", batch, true));
    if (const char *shard = std::getenv("MTC_SHARD_SIZE"))
        defaults.shardSize = static_cast<std::size_t>(
            parseEnvCount("MTC_SHARD_SIZE", shard, true));
    // MTC_STREAM_WINDOW=0 asks for an unbounded decode→check window;
    // any window is purely operational (bit-identical summaries).
    if (const char *window = std::getenv("MTC_STREAM_WINDOW"))
        defaults.streamWindow = static_cast<std::size_t>(
            parseEnvCount("MTC_STREAM_WINDOW", window, true));
    // MTC_JOURNAL is a path, not a count, but gets the same strictness:
    // an empty value is a misconfiguration (probably MTC_JOURNAL= left
    // over from a shell edit), not a request for no journal.
    if (const char *journal = std::getenv("MTC_JOURNAL")) {
        if (*journal == '\0')
            throw ConfigError(
                "MTC_JOURNAL is set but empty; unset it or give a path");
        defaults.journalPath = journal;
    }
    // MTC_DUMP_TRACE gets MTC_JOURNAL's path strictness for the same
    // reason: an empty value is a shell-edit leftover, not a request
    // to dump nowhere.
    if (const char *trace = std::getenv("MTC_DUMP_TRACE")) {
        if (*trace == '\0')
            throw ConfigError("MTC_DUMP_TRACE is set but empty; unset "
                              "it or give a path");
        defaults.dumpTracePath = trace;
    }
    if (const char *timeout = std::getenv("MTC_TEST_TIMEOUT_MS"))
        defaults.testTimeoutMs =
            parseEnvCount("MTC_TEST_TIMEOUT_MS", timeout, true);
    // The sandbox knobs get the same strictness: MTC_SANDBOX=yes must
    // fail fast, not silently run unsandboxed.
    if (const char *sandbox = std::getenv("MTC_SANDBOX")) {
        defaults.mode = parseEnvCount("MTC_SANDBOX", sandbox, true)
            ? ExecutionMode::Sandboxed
            : ExecutionMode::InProcess;
    }
    if (const char *mem = std::getenv("MTC_SANDBOX_MEM_MB"))
        defaults.sandboxMemMb =
            parseEnvCount("MTC_SANDBOX_MEM_MB", mem, true);
    if (const char *cpu = std::getenv("MTC_SANDBOX_CPU_S"))
        defaults.sandboxCpuS =
            parseEnvCount("MTC_SANDBOX_CPU_S", cpu, true);
    // Fabric security/chaos knobs. The key variable carries a *path*
    // so the key bytes never transit the environment or a process
    // listing; like MTC_JOURNAL, an empty value is a misconfiguration.
    if (const char *key_file = std::getenv("MTC_FABRIC_KEY_FILE")) {
        if (*key_file == '\0')
            throw ConfigError("MTC_FABRIC_KEY_FILE is set but empty; "
                              "unset it or give a path");
        defaults.distKeyFile = key_file;
    }
    if (const char *rate = std::getenv("MTC_AUDIT_RATE"))
        defaults.distAuditRate = parseEnvRate("MTC_AUDIT_RATE", rate);
    defaults.distNetFault = netFaultFromEnv(defaults.distNetFault);
    return defaults;
}

NetFaultConfig
netFaultFromEnv(NetFaultConfig defaults)
{
    // Chaos rates apply to both directions of every fabric
    // connection; the per-direction split is test/API surface only.
    const auto fault_rate = [&](const char *name,
                                double NetFaultRates::*field) {
        if (const char *text = std::getenv(name)) {
            const double r = parseEnvRate(name, text);
            defaults.send.*field = r;
            defaults.recv.*field = r;
        }
    };
    fault_rate("MTC_NET_FAULT_DROP", &NetFaultRates::drop);
    fault_rate("MTC_NET_FAULT_DUP", &NetFaultRates::duplicate);
    fault_rate("MTC_NET_FAULT_CORRUPT", &NetFaultRates::corrupt);
    fault_rate("MTC_NET_FAULT_DELAY", &NetFaultRates::delay);
    fault_rate("MTC_NET_FAULT_REORDER", &NetFaultRates::reorder);
    fault_rate("MTC_NET_FAULT_DRIP", &NetFaultRates::drip);
    fault_rate("MTC_NET_FAULT_DISCONNECT", &NetFaultRates::disconnect);
    if (const char *ms = std::getenv("MTC_NET_FAULT_DELAY_MS"))
        defaults.delayMs =
            parseEnvCount("MTC_NET_FAULT_DELAY_MS", ms, true);
    if (const char *seed = std::getenv("MTC_NET_FAULT_SEED"))
        defaults.seed =
            parseEnvCount("MTC_NET_FAULT_SEED", seed, true);
    return defaults;
}

CampaignConfig
CampaignConfig::fromEnv()
{
    return fromEnv(CampaignConfig{});
}

ExecutorConfig
platformFor(const TestConfig &cfg, PlatformVariant variant)
{
    ExecutorConfig exec = variant == PlatformVariant::Linux
        ? osConfig(cfg.isa)
        : bareMetalConfig(cfg.isa);
    return exec;
}

// The deterministic plan — deriveTestPlans, flowTemplate,
// runPlannedTest — is exported via campaign_plan.h (see its file
// comment for the bit-identity argument); the distributed worker
// rebuilds the same plans from the campaign spec alone.

std::vector<TestPlan>
deriveTestPlans(const TestConfig &cfg, const CampaignConfig &campaign)
{
    // Tests are derived from one seed per configuration so every
    // figure sees the same test programs (the paper reuses one set of
    // generated tests across experiments for fairness).
    Rng seeder(campaign.seed ^
               (static_cast<std::uint64_t>(cfg.numThreads) << 40) ^
               (static_cast<std::uint64_t>(cfg.opsPerThread) << 20) ^
               (static_cast<std::uint64_t>(cfg.numLocations) << 8) ^
               static_cast<std::uint64_t>(cfg.wordsPerLine) ^
               (cfg.isa == Isa::X86 ? 0x5a5a5a5aull : 0ull));

    std::vector<TestPlan> plans(campaign.testsPerConfig);
    for (TestPlan &plan : plans) {
        plan.genSeed = seeder();
        plan.flowSeed = seeder();
        std::uint64_t mix =
            plan.genSeed ^ (plan.flowSeed * 0x9e3779b97f4a7c15ULL);
        plan.retrySeed = splitMix64(mix);
    }
    return plans;
}

FlowConfig
flowTemplate(const TestConfig &cfg, const CampaignConfig &campaign)
{
    FlowConfig flow_cfg;
    flow_cfg.iterations = campaign.iterations;
    flow_cfg.exec = platformFor(cfg, campaign.variant);
    flow_cfg.runConventional = campaign.runConventional;
    flow_cfg.fault = campaign.fault;
    flow_cfg.recovery = campaign.recovery;
    flow_cfg.shardSize = campaign.shardSize;
    // The campaign parallelizes at test granularity; each flow stays
    // serial inside so campaign.threads workers mean campaign.threads
    // busy cores, not threads^2 oversubscription.
    flow_cfg.threads = 1;
    flow_cfg.batch = campaign.batch;
    flow_cfg.streamCheck = campaign.streamCheck;
    flow_cfg.streamWindow = campaign.streamWindow;
    flow_cfg.exec.stallAfterSteps = campaign.stallAfterSteps;
    flow_cfg.exec.stallIgnoresCancel = campaign.stallUncooperative;
    flow_cfg.exec.dieAfterRuns = campaign.dieAfterRuns;
    flow_cfg.exec.dieSignal = campaign.dieSignal;
    flow_cfg.exec.leakAfterRuns = campaign.leakAfterRuns;
    // Trace dumps need every unit's sorted unique signature stream
    // kept in the FlowResult; the stream is derived state (not a
    // result-determining knob), so this stays out of the identity.
    flow_cfg.keepSignatures = campaign.keepSignatureStreams ||
        !campaign.dumpTracePath.empty();
    return flow_cfg;
}

TestOutcome
runPlannedTest(const TestConfig &cfg, const FlowConfig &flow_template,
               const TestPlan &plan, const CampaignConfig &campaign,
               unsigned test_index, Watchdog *watchdog)
{
    TestOutcome outcome;
    Rng retry_seeder(plan.retrySeed);
    for (unsigned attempt = 0;
         attempt <= campaign.testRetries && !outcome.ok; ++attempt) {
        std::uint64_t gen_seed = plan.genSeed;
        std::uint64_t flow_seed = plan.flowSeed;
        if (attempt) {
            ++outcome.retriesUsed;
            gen_seed = retry_seeder();
            flow_seed = retry_seeder();
        }
        try {
            const TestProgram program = generateTest(cfg, gen_seed);
            FlowConfig flow_cfg = flow_template;
            flow_cfg.seed = flow_seed;
            CancellationToken token;
            std::optional<Watchdog::Guard> deadline;
            if (watchdog && campaign.testTimeoutMs) {
                flow_cfg.cancel = &token;
                deadline.emplace(watchdog->watch(
                    token,
                    std::chrono::milliseconds(campaign.testTimeoutMs)));
            }
            ValidationFlow flow(flow_cfg);
            outcome.result = flow.runTest(program);
            outcome.ok = true;
            outcome.status = TestStatus::Ok;
        } catch (const TestHungError &err) {
            // Must precede the Error handler: a hang is an error
            // event for the breaker AND a distinct verdict — "this
            // config wedges the platform" is the paper's most
            // interesting post-silicon outcome after a violation.
            ++outcome.hungAttempts;
            outcome.status = TestStatus::Hung;
            warn("test " + std::to_string(test_index) + " of " +
                 cfg.name() + " hung (attempt " +
                 std::to_string(attempt + 1) + "): " + err.what());
        } catch (const Error &err) {
            outcome.status = TestStatus::Failed;
            warn("test " + std::to_string(test_index) + " of " +
                 cfg.name() + " failed (attempt " +
                 std::to_string(attempt + 1) + "): " + err.what());
        }
    }
    return outcome;
}

namespace
{

/**
 * Error events one finished unit contributes to its config's circuit
 * breaker: watchdog reclaims, a final failed verdict, platform
 * crashes, and quarantined (undecodable) signatures — every way a
 * config can show it is poisoning the campaign.
 */
unsigned
breakerEvents(const TestOutcome &outcome)
{
    std::uint64_t events = outcome.hungAttempts;
    if (outcome.status == TestStatus::Failed)
        ++events;
    events += outcome.result.platformCrashes;
    events += outcome.result.fault.quarantinedCount();
    return static_cast<unsigned>(events);
}

/**
 * Fold the outcome slots into a ConfigSummary, strictly in test
 * order: double accumulation is order-sensitive, so folding slots in
 * index order is what makes the summary bit-identical to the serial
 * runner's at any worker count.
 */
ConfigSummary
summarize(const TestConfig &cfg,
          const std::vector<TestOutcome> &outcomes, bool tripped,
          unsigned error_events)
{
    ConfigSummary summary;
    summary.cfg = cfg;
    summary.tripped = tripped;
    summary.errorEvents = error_events;

    std::uint64_t complete = 0, no_resort = 0, incremental = 0;
    std::uint64_t graphs = 0;
    double affected_weighted = 0.0;
    std::uint64_t affected_count = 0;

    for (const TestOutcome &outcome : outcomes) {
        summary.testRetriesUsed += outcome.retriesUsed;
        summary.hungAttempts += outcome.hungAttempts;
        if (outcome.status == TestStatus::Skipped) {
            ++summary.skippedTests;
            continue;
        }
        if (!outcome.ok) {
            if (outcome.status == TestStatus::Hung)
                ++summary.hungTests;
            else
                ++summary.failedTests;
            continue;
        }
        const FlowResult &result = outcome.result;

        ++summary.tests;
        summary.avgUniqueSignatures += result.uniqueSignatures;
        summary.avgSignatureBytes += result.intrusive.signatureBytes;
        summary.avgUnrelatedAccesses +=
            result.intrusive.normalizedUnrelated();
        summary.avgCodeRatio += result.code.ratio();
        summary.avgOriginalKB += result.code.originalBytes / 1024.0;
        summary.avgInstrumentedKB +=
            result.code.instrumentedBytes / 1024.0;

        summary.collectiveMs += result.collectiveMs;
        summary.conventionalMs += result.conventionalMs;
        summary.collectiveWork += result.collective.verticesProcessed +
            result.collective.edgesProcessed;
        summary.conventionalWork +=
            result.conventional.verticesProcessed +
            result.conventional.edgesProcessed;

        complete += result.collective.completeSorts;
        no_resort += result.collective.noResortNeeded;
        incremental += result.collective.incrementalResorts;
        graphs += result.collective.graphsChecked;
        affected_weighted +=
            result.collective.affectedFraction.sum();
        affected_count += result.collective.affectedFraction.count();

        summary.avgComputationOverhead += result.computationOverhead;
        summary.avgSortingOverhead += result.sortingOverhead;
        summary.violations += result.violatingSignatures +
            result.assertionFailures + result.platformCrashes;

        summary.injected += result.fault.injected;
        summary.quarantinedSignatures += result.fault.quarantinedCount();
        summary.quarantinedIterations += result.fault.quarantinedIterations;
        summary.confirmedViolations += result.fault.confirmedViolations;
        summary.transientViolations += result.fault.transientViolations;
        summary.crashRetries += result.fault.crashRetries;
    }

    const double n = summary.tests ? summary.tests : 1;
    summary.avgUniqueSignatures /= n;
    summary.avgSignatureBytes /= n;
    summary.avgUnrelatedAccesses /= n;
    summary.avgCodeRatio /= n;
    summary.avgOriginalKB /= n;
    summary.avgInstrumentedKB /= n;
    summary.avgComputationOverhead /= n;
    summary.avgSortingOverhead /= n;

    summary.collectiveGraphs = graphs;
    summary.collectiveCompleteSorts = complete;
    if (graphs) {
        summary.fracComplete = static_cast<double>(complete) / graphs;
        summary.fracNoResort = static_cast<double>(no_resort) / graphs;
        summary.fracIncremental =
            static_cast<double>(incremental) / graphs;
    }
    if (affected_count) {
        summary.avgAffectedFraction =
            affected_weighted / static_cast<double>(affected_count);
    }
    return summary;
}

/** One configuration's pre-derived execution plan. */
struct ConfigPlan
{
    FlowConfig flow;
    std::vector<TestPlan> tests;
    bool setupOk = false;
    std::string error;
};

/** "a; b" note concatenation that tolerates empty operands. */
void
appendNote(std::string &note, const std::string &addition)
{
    if (addition.empty())
        return;
    if (!note.empty())
        note += "; ";
    note += addition;
}

/**
 * Sandboxed unit engine: dispatch every unit to the pre-forked worker
 * fleet over framed pipes. The parent keeps the journal, the breaker
 * and the outcome slots; the children run runPlannedTest and nothing
 * else. Determinism is preserved exactly as in the threaded engine —
 * pre-derived seeds, per-unit slots, in-order aggregation — so the
 * summary is bit-identical to in-process at any worker count.
 *
 * A worker loss is charged like an in-flow platform crash: retried on
 * a fresh worker while the unit's crash budget
 * (recovery.crashRetries) lasts, every consumed death merged into the
 * final outcome's platformCrashes + fault.crashRetries (which feed
 * the violation count, the breaker, and the CLI's crash exit code),
 * and the child's last-gasp crash report attached to the fault note.
 * A hard-deadline SIGKILL (non-cooperative hang) is recorded as Hung
 * without retry: the child's own watchdog and in-child retries
 * already had their chance — a unit that wedges past them would only
 * wedge the respawn too.
 */
void
runUnitsSandboxed(
    const std::vector<TestConfig> &configs,
    const CampaignConfig &campaign,
    const std::vector<ConfigPlan> &plans,
    const std::vector<std::pair<std::size_t, std::size_t>> &units,
    std::vector<std::vector<TestOutcome>> &outcomes,
    const std::function<bool(std::size_t)> &resolve_without_running,
    const std::function<void(std::size_t)> &record_outcome)
{
    SandboxConfig sandbox;
    sandbox.workers = ThreadPool::resolveThreads(campaign.threads);
    sandbox.memLimitMb = campaign.sandboxMemMb;
    sandbox.cpuLimitS = campaign.sandboxCpuS;
    // 2x the per-attempt watchdog deadline, per attempt the child may
    // legitimately burn: the cooperative path always wins the race
    // when it works at all, and the SIGKILL bound stays within the
    // documented 2x-timeout reclaim guarantee.
    if (campaign.testTimeoutMs) {
        sandbox.hardDeadlineMs = 2 * campaign.testTimeoutMs *
            (campaign.testRetries + 1);
    }

    // Child-side state, materialized per worker process after the
    // fork (a watchdog thread must never exist in the forking
    // parent).
    struct ChildRuntime
    {
        std::unique_ptr<Watchdog> watchdog;
    };
    auto child_runtime = std::make_shared<ChildRuntime>();

    SandboxPool::WorkerFn worker_fn =
        [&configs, &plans, &campaign, child_runtime](
            const std::vector<std::uint8_t> &request,
            const WorkerEnv &env) -> std::vector<std::uint8_t> {
        const auto [c, t] = decodeUnitRequest(request);

        FlowConfig flow = plans[c].flow;
        if (env.workerIndex != 0 || env.generation != 0) {
            // The hard-failure drills arm only the initial fleet's
            // first worker: one observable containment event, then
            // the retried unit completes on an unarmed respawn.
            flow.exec.dieAfterRuns = 0;
            flow.exec.leakAfterRuns = 0;
        }
        if (campaign.testTimeoutMs && !child_runtime->watchdog)
            child_runtime->watchdog = std::make_unique<Watchdog>();

        setCrashContext(configs[c].name() + "#" + std::to_string(t),
                        plans[c].tests[t].genSeed);
        UnitRecord record;
        record.configName = configs[c].name();
        record.testIndex = static_cast<std::uint32_t>(t);
        record.genSeed = plans[c].tests[t].genSeed;
        record.flowSeed = plans[c].tests[t].flowSeed;
        record.outcome = runPlannedTest(
            configs[c], flow, plans[c].tests[t], campaign,
            static_cast<unsigned>(t), child_runtime->watchdog.get());
        clearCrashContext();
        record.outcome.result.executions.clear();
        return encodeUnitRecord(record);
    };

    SandboxPool pool(sandbox, worker_fn);

    std::vector<unsigned> crash_attempts(units.size(), 0);
    std::vector<std::string> crash_notes(units.size());

    const SandboxPool::RequestFn request_fn =
        [&](std::size_t u) -> std::optional<std::vector<std::uint8_t>> {
        if (resolve_without_running(u))
            return std::nullopt;
        const auto [c, t] = units[u];
        return encodeUnitRequest(c, t);
    };

    const SandboxPool::ResultFn result_fn =
        [&](std::size_t u, const std::vector<std::uint8_t> &payload) {
        const auto [c, t] = units[u];
        UnitRecord record = decodeUnitRecord(payload);
        const TestPlan &plan = plans[c].tests[t];
        if (record.configName != configs[c].name() ||
            record.testIndex != t || record.genSeed != plan.genSeed ||
            record.flowSeed != plan.flowSeed) {
            throw SandboxError(
                "sandbox: worker response does not match the "
                "dispatched unit (test " + std::to_string(t) + " of " +
                configs[c].name() + ")");
        }
        TestOutcome &slot = outcomes[c][t];
        slot = record.outcome;
        if (crash_attempts[u]) {
            // Deaths consumed on the way to this success are charged
            // exactly like in-flow platform crashes.
            slot.result.platformCrashes += crash_attempts[u];
            slot.result.fault.crashRetries += crash_attempts[u];
            appendNote(slot.result.fault.note,
                       "sandbox: " + crash_notes[u]);
        }
        record_outcome(u);
    };

    const SandboxPool::LossFn loss_fn =
        [&](std::size_t u, const WorkerLoss &loss) -> bool {
        const auto [c, t] = units[u];
        TestOutcome &slot = outcomes[c][t];

        if (loss.kind == WorkerLossKind::HardKill) {
            slot = TestOutcome{};
            slot.status = TestStatus::Hung;
            slot.ok = false;
            slot.hungAttempts = 1;
            slot.result.fault.note = "sandbox: " + loss.describe();
            warn("test " + std::to_string(t) + " of " +
                 configs[c].name() +
                 " hung non-cooperatively; worker reclaimed by "
                 "SIGKILL");
            record_outcome(u);
            return false;
        }

        ++crash_attempts[u];
        appendNote(crash_notes[u], loss.describe());
        warn("test " + std::to_string(t) + " of " + configs[c].name() +
             " lost its worker (death " +
             std::to_string(crash_attempts[u]) + "): " +
             loss.describe());
        if (crash_attempts[u] <= campaign.recovery.crashRetries)
            return true; // retry on the freshly respawned worker

        slot = TestOutcome{};
        slot.status = TestStatus::Failed;
        slot.ok = false;
        slot.result.platformCrashes = crash_attempts[u];
        slot.result.fault.crashRetries = campaign.recovery.crashRetries;
        slot.result.fault.note = "sandbox: " + crash_notes[u];
        record_outcome(u);
        return false;
    };

    pool.run(units.size(), request_fn, result_fn, loss_fn);
}

/**
 * Distributed unit engine: serve the campaign's flat unit list over
 * the TCP fabric (src/dist/coordinator.h) to a forked loopback fleet
 * plus any externally attached mtc_worker processes. The parent keeps
 * the journal, the breaker and the outcome slots, exactly as in
 * sandboxed mode.
 *
 * The loss policy is where distributed deliberately differs from
 * sandboxed: a lost worker is a *fabric* event, not a platform crash
 * — the unit's leased work simply never happened, and reassignment
 * re-executes it from its pre-derived seeds to the very same result.
 * So losses are not charged to the outcome (no platformCrashes, no
 * crash-retry budget), which is what keeps the summary bit-identical
 * to a serial run even when workers die mid-batch. Only a unit that
 * keeps losing workers past the reassignment cap is abandoned and
 * recorded Failed.
 */
void
runUnitsDistributed(
    const std::vector<TestConfig> &configs,
    const CampaignConfig &campaign,
    const std::vector<ConfigPlan> &plans,
    const std::vector<std::pair<std::size_t, std::size_t>> &units,
    std::vector<std::vector<TestOutcome>> &outcomes,
    const std::function<bool(std::size_t)> &resolve_without_running,
    const std::function<void(std::size_t)> &record_outcome)
{
    FabricConfig fabric;
    fabric.port = campaign.distPort;
    fabric.batchSize = campaign.distBatch;
    fabric.maxInFlightPerWorker = campaign.distMaxInFlight;
    fabric.heartbeatTimeoutMs = campaign.distHeartbeatTimeoutMs;
    fabric.leaseTimeoutMs = campaign.distLeaseTimeoutMs;
    // Chaos mode needs lease revocation for liveness: a dropped Lease
    // (or Result) frame leaves a healthy, heartbeating worker that
    // will never serve that lease, and only the lease timeout can
    // reclaim it. Heartbeat liveness cannot — the worker isn't dead.
    if (fabric.netFault.any() && fabric.leaseTimeoutMs == 0)
        fabric.leaseTimeoutMs = 5000;
    // A loopback fleet that died for good must fail the campaign, not
    // hang it; an external fleet is the operator's to attach whenever.
    fabric.stallTimeoutMs = campaign.distWorkers ? 60000 : 0;
    if (!campaign.distKeyFile.empty())
        fabric.key = loadFabricKey(campaign.distKeyFile);
    fabric.netFault = campaign.distNetFault;
    fabric.auditRate = campaign.distAuditRate;
    // The audit sample must be reproducible for a given campaign but
    // uncorrelated with every other consumer of the seed.
    std::uint64_t audit_seed_src =
        campaign.seed ^ 0xa5a5a5a55a5a5a5aull;
    fabric.auditSeed = splitMix64(audit_seed_src);

    CampaignSpec spec;
    spec.configs = configs;
    spec.campaign = campaign;
    Coordinator coordinator(fabric, encodeCampaignSpec(spec));

    if (!campaign.distPortFile.empty()) {
        std::ofstream port_file(campaign.distPortFile,
                                std::ios::trunc);
        port_file << coordinator.port() << '\n';
        if (!port_file)
            throw ConfigError("cannot write coordinator port to '" +
                              campaign.distPortFile + "'");
    }

    // Fork-before-threads: the coordinator is poll-based (no threads
    // yet), so the loopback fleet forks clean. Worker 0 carries the
    // die-mid-batch drill when armed.
    std::vector<pid_t> fleet;
    fleet.reserve(campaign.distWorkers);
    for (unsigned i = 0; i < campaign.distWorkers; ++i) {
        LoopbackWorkerOptions wopts;
        wopts.exitAfterUnits =
            i == 0 ? campaign.distDrillExitAfter : 0;
        // The Byzantine drill rides on the LAST worker so it never
        // collides with worker 0's exit drill, and an honest worker
        // exists to audit against whenever distWorkers >= 2.
        wopts.corruptResults = campaign.distDrillCorrupt &&
            i + 1 == campaign.distWorkers;
        wopts.key = fabric.key;
        wopts.netFault = campaign.distNetFault;
        wopts.listenerFd = coordinator.listenerFd();
        fleet.push_back(
            forkCampaignWorker(coordinator.port(), i, wopts));
    }
    const auto reap_fleet = [&fleet](bool kill_first) {
        for (const pid_t pid : fleet) {
            if (kill_first)
                ::kill(pid, SIGKILL);
            try {
                waitChild(pid);
            } catch (const ProcessError &) {
                // Already reaped or never existed; nothing to do.
            }
        }
        fleet.clear();
    };

    const Coordinator::RequestFn request_fn =
        [&](std::size_t u) -> std::optional<std::vector<std::uint8_t>> {
        if (resolve_without_running(u))
            return std::nullopt;
        const auto [c, t] = units[u];
        return encodeUnitRequest(c, t);
    };

    const Coordinator::ResultFn result_fn =
        [&](std::size_t u, const std::vector<std::uint8_t> &payload) {
        const auto [c, t] = units[u];
        UnitRecord record = decodeUnitRecord(payload);
        const TestPlan &plan = plans[c].tests[t];
        if (record.configName != configs[c].name() ||
            record.testIndex != t || record.genSeed != plan.genSeed ||
            record.flowSeed != plan.flowSeed) {
            throw DistError(
                "fabric: worker response does not match the leased "
                "unit (test " + std::to_string(t) + " of " +
                configs[c].name() + ")");
        }
        outcomes[c][t] = record.outcome;
        record_outcome(u);
    };

    // Reassignments per unit before giving up. Generous on purpose: a
    // reassigned unit costs one re-execution, an abandoned unit costs
    // a campaign hole.
    constexpr unsigned kMaxUnitLosses = 8;
    const Coordinator::LossFn loss_fn =
        [&](std::size_t u, unsigned losses,
            const std::string &why) -> bool {
        const auto [c, t] = units[u];
        if (losses <= kMaxUnitLosses)
            return true; // reassign; the re-execution is bit-identical
        TestOutcome &slot = outcomes[c][t];
        slot = TestOutcome{};
        slot.status = TestStatus::Failed;
        slot.ok = false;
        slot.result.fault.note = "fabric: abandoned after " +
            std::to_string(losses) + " worker losses (" + why + ")";
        warn("test " + std::to_string(t) + " of " + configs[c].name() +
             " abandoned after " + std::to_string(losses) +
             " worker losses");
        record_outcome(u);
        return false;
    };

    // Byzantine-audit hooks. The digest is payload-level and
    // timing-blind; the arbiter re-executes a unit in the coordinator
    // process from the same pre-derived plan the workers use, so its
    // record is the ground truth any honest worker reproduces. Its
    // watchdog is created lazily on first arbitration — after every
    // fork above, preserving fork-before-threads.
    std::unique_ptr<Watchdog> arbiter_watchdog;
    Coordinator::AuditHooks hooks;
    hooks.digest = [](std::size_t,
                      const std::vector<std::uint8_t> &payload) {
        return unitRecordDigest(payload);
    };
    hooks.arbiter =
        [&](std::size_t u) -> std::vector<std::uint8_t> {
        const auto [c, t] = units[u];
        if (campaign.testTimeoutMs && !arbiter_watchdog)
            arbiter_watchdog = std::make_unique<Watchdog>();
        UnitRecord record;
        record.configName = configs[c].name();
        record.testIndex = static_cast<std::uint32_t>(t);
        record.genSeed = plans[c].tests[t].genSeed;
        record.flowSeed = plans[c].tests[t].flowSeed;
        // Match the worker-side runner exactly: hard-failure drills
        // are sandbox-scoped and zeroed on the fabric (see
        // dist_campaign.h).
        FlowConfig flow = plans[c].flow;
        flow.exec.dieAfterRuns = 0;
        flow.exec.leakAfterRuns = 0;
        record.outcome = runPlannedTest(
            configs[c], flow, plans[c].tests[t], campaign,
            static_cast<unsigned>(t), arbiter_watchdog.get());
        record.outcome.result.executions.clear();
        return encodeUnitRecord(record);
    };

    try {
        coordinator.run(units.size(), request_fn, result_fn, loss_fn,
                        hooks);
    } catch (...) {
        if (campaign.distStatsOut)
            *campaign.distStatsOut = coordinator.stats();
        reap_fleet(true);
        throw;
    }
    if (campaign.distStatsOut)
        *campaign.distStatsOut = coordinator.stats();
    // Done has been broadcast; the fleet drains and exits on its own.
    reap_fleet(false);
}

/**
 * Shared engine of runConfig and runCampaign. Plans every
 * configuration up front so the whole campaign is one flat list of
 * independent (config, test) units — the pool then keeps every worker
 * busy across configuration boundaries instead of draining at the
 * tail of each configuration — and runs each unit through the full
 * resilience stack: journal replay, circuit breaker, watchdog,
 * retries, journal append.
 *
 * @param propagate_setup_errors true (runConfig) rethrows a config
 *        whose setup fails; false (runCampaign) degrades its summary
 *        and continues.
 */
std::vector<ConfigSummary>
runUnits(const std::vector<TestConfig> &configs,
         const CampaignConfig &campaign, bool propagate_setup_errors)
{
    std::vector<ConfigPlan> plans(configs.size());
    std::vector<std::pair<std::size_t, std::size_t>> units;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        // Degraded-summary path: a configuration that cannot even be
        // set up yields a marked summary instead of unwinding the
        // remaining configurations.
        try {
            plans[c].flow = flowTemplate(configs[c], campaign);
            plans[c].tests = deriveTestPlans(configs[c], campaign);
            plans[c].setupOk = true;
        } catch (const Error &err) {
            if (propagate_setup_errors)
                throw;
            warn("configuration " + configs[c].name() +
                 " failed, continuing campaign: " + err.what());
            plans[c].error = err.what();
            continue;
        }
        for (std::size_t t = 0; t < plans[c].tests.size(); ++t)
            units.emplace_back(c, t);
    }

    std::vector<std::vector<TestOutcome>> outcomes(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c)
        outcomes[c].resize(plans[c].tests.size());

    std::unique_ptr<CampaignJournal> journal;
    if (!campaign.journalPath.empty()) {
        journal = std::make_unique<CampaignJournal>(
            campaign.journalPath, campaignIdentity(configs, campaign),
            campaign.resume);
    }
    // Fork-before-threads: in sandboxed mode the parent spawns NO
    // watchdog (and, below, no thread pool) — the fleet is forked
    // from a single-threaded parent, and each worker child lazily
    // builds its own watchdog after the fork. The parent-side reclaim
    // for non-cooperative hangs is the sandbox's hard-deadline
    // SIGKILL, not a thread.
    std::unique_ptr<Watchdog> watchdog;
    if (campaign.testTimeoutMs &&
        campaign.mode == ExecutionMode::InProcess)
        watchdog = std::make_unique<Watchdog>();

    // One breaker per configuration; value-initialized to zero.
    std::vector<std::atomic<unsigned>> error_events(configs.size());
    const auto config_tripped = [&](std::size_t c) {
        return campaign.errorBudget != 0 &&
            error_events[c].load(std::memory_order_relaxed) >=
            campaign.errorBudget;
    };

    // True when unit u resolves without running — tripped breaker or
    // journal replay — filling its slot. Shared by both execution
    // modes so replay/skip semantics cannot drift between them.
    const auto resolve_without_running = [&](std::size_t u) -> bool {
        const auto [c, t] = units[u];
        TestOutcome &slot = outcomes[c][t];

        if (config_tripped(c)) {
            slot.status = TestStatus::Skipped;
            return true;
        }

        if (journal) {
            if (const UnitRecord *record = journal->find(
                    configs[c].name(), static_cast<std::uint32_t>(t))) {
                const TestPlan &plan = plans[c].tests[t];
                if (record->genSeed != plan.genSeed ||
                    record->flowSeed != plan.flowSeed) {
                    throw ConfigError(
                        "--resume: journal record for test " +
                        std::to_string(t) + " of " + configs[c].name() +
                        " carries different seeds than the campaign "
                        "derives — the journal belongs to another run");
                }
                slot = record->outcome;
                // Replayed errors still arm the breaker: a resumed
                // campaign must not forget the poison it already saw.
                error_events[c].fetch_add(breakerEvents(slot),
                                          std::memory_order_relaxed);
                return true;
            }
        }
        return false;
    };

    // Journal unit u's finished slot and charge its breaker.
    const auto record_outcome = [&](std::size_t u) {
        const auto [c, t] = units[u];
        const TestOutcome &slot = outcomes[c][t];
        if (journal) {
            UnitRecord record;
            record.configName = configs[c].name();
            record.testIndex = static_cast<std::uint32_t>(t);
            record.genSeed = plans[c].tests[t].genSeed;
            record.flowSeed = plans[c].tests[t].flowSeed;
            record.outcome = slot;
            record.outcome.result.executions.clear();
            journal->append(record);
        }
        error_events[c].fetch_add(breakerEvents(slot),
                                  std::memory_order_relaxed);
    };

    const auto run_unit = [&](std::size_t u) {
        if (resolve_without_running(u))
            return;
        const auto [c, t] = units[u];
        outcomes[c][t] = runPlannedTest(configs[c], plans[c].flow,
                                        plans[c].tests[t], campaign,
                                        static_cast<unsigned>(t),
                                        watchdog.get());
        record_outcome(u);
    };

    if (campaign.mode == ExecutionMode::Sandboxed) {
        runUnitsSandboxed(configs, campaign, plans, units, outcomes,
                          resolve_without_running, record_outcome);
    } else if (campaign.mode == ExecutionMode::Distributed) {
        runUnitsDistributed(configs, campaign, plans, units, outcomes,
                            resolve_without_running, record_outcome);
    } else {
        const unsigned workers =
            ThreadPool::resolveThreads(campaign.threads);
        if (workers > 1 && units.size() > 1) {
            ThreadPool pool(workers);
            pool.parallelFor(units.size(), run_unit);
        } else {
            for (std::size_t u = 0; u < units.size(); ++u)
                run_unit(u);
        }
    }

    if (!campaign.dumpTracePath.empty()) {
        std::vector<std::vector<TestPlan>> trace_plans(configs.size());
        for (std::size_t c = 0; c < configs.size(); ++c)
            trace_plans[c] = plans[c].tests;
        writeCampaignTrace(campaign.dumpTracePath, configs, campaign,
                           trace_plans, outcomes);
    }

    std::vector<ConfigSummary> summaries;
    summaries.reserve(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        if (!plans[c].setupOk) {
            ConfigSummary degraded;
            degraded.cfg = configs[c];
            degraded.degraded = true;
            degraded.error = plans[c].error;
            summaries.push_back(std::move(degraded));
            continue;
        }
        summaries.push_back(summarizeConfig(configs[c], outcomes[c],
                                            campaign.errorBudget));
    }
    return summaries;
}

} // anonymous namespace

CampaignJournal::Identity
campaignIdentity(const std::vector<TestConfig> &configs,
                 const CampaignConfig &campaign)
{
    // Everything that determines a campaign's deterministic result
    // stream is folded in; operational knobs (threads, watchdog
    // timeout, error budget) are deliberately left out — they may
    // change between a run and its resume, or between a dump and its
    // offline re-check.
    ByteWriter w;
    w.u64(campaign.iterations);
    w.u32(campaign.testsPerConfig);
    w.u64(campaign.seed);
    w.u8(campaign.variant == PlatformVariant::Linux ? 1 : 0);
    w.u8(campaign.runConventional ? 1 : 0);
    w.f64(campaign.fault.bitFlipRate);
    w.f64(campaign.fault.tornStoreRate);
    w.f64(campaign.fault.truncationRate);
    w.f64(campaign.fault.dropRate);
    w.f64(campaign.fault.duplicateRate);
    w.u64(campaign.fault.seed);
    w.u32(campaign.recovery.confirmationRuns);
    w.u64(campaign.recovery.confirmationIterations);
    w.u32(campaign.recovery.crashRetries);
    w.u32(campaign.testRetries);
    w.u64(campaign.shardSize);
    w.u64(campaign.stallAfterSteps);
    // The drills change the deterministic result stream; the
    // execution mode and sandbox budgets do not (a journal written in
    // one mode resumes in the other), so only the former are folded.
    w.u8(campaign.stallUncooperative ? 1 : 0);
    w.u64(campaign.dieAfterRuns);
    w.u32(static_cast<std::uint32_t>(campaign.dieSignal));
    w.u64(campaign.leakAfterRuns);
    w.u32(static_cast<std::uint32_t>(configs.size()));
    std::string names;
    for (const TestConfig &cfg : configs) {
        w.str(cfg.name());
        names += names.empty() ? "" : ",";
        names += cfg.name();
    }

    CampaignJournal::Identity identity;
    identity.digest =
        fnv1a64(w.bytes().data(), w.bytes().size());
    identity.description = "seed=" + std::to_string(campaign.seed) +
        " iterations=" + std::to_string(campaign.iterations) +
        " tests=" + std::to_string(campaign.testsPerConfig) +
        " configs=" + names;
    return identity;
}

ConfigSummary
summarizeConfig(const TestConfig &cfg,
                const std::vector<TestOutcome> &outcomes,
                unsigned error_budget)
{
    // Recompute the breaker charge from the slots. Inline this equals
    // the engine's live counter — every non-skipped slot was charged
    // exactly once (run, replay, or loss path) and skipped slots
    // charge nothing — so the offline checker reproduces tripped /
    // degraded verdicts from the trace alone.
    unsigned events = 0;
    for (const TestOutcome &outcome : outcomes)
        events += breakerEvents(outcome);
    const bool tripped = error_budget != 0 && events >= error_budget;

    ConfigSummary summary = summarize(cfg, outcomes, tripped, events);
    if (summary.tripped) {
        summary.degraded = true;
        summary.error = "circuit breaker tripped after " +
            std::to_string(summary.errorEvents) +
            " error events (budget " + std::to_string(error_budget) +
            "); " + std::to_string(summary.skippedTests) + " of " +
            std::to_string(outcomes.size()) + " tests skipped";
    }
    return summary;
}

ConfigSummary
runConfig(const TestConfig &cfg, const CampaignConfig &campaign)
{
    return runUnits({cfg}, campaign, true).front();
}

std::vector<ConfigSummary>
runCampaign(const std::vector<TestConfig> &configs,
            const CampaignConfig &campaign)
{
    return runUnits(configs, campaign, false);
}

} // namespace mtc
