#include "harness/campaign.h"

#include <cstdlib>

#include "sim/executor.h"
#include "support/rng.h"
#include "testgen/generator.h"

namespace mtc
{

CampaignConfig
CampaignConfig::fromEnv(CampaignConfig defaults)
{
    if (const char *iters = std::getenv("MTC_ITERATIONS"))
        defaults.iterations = std::strtoull(iters, nullptr, 10);
    if (const char *tests = std::getenv("MTC_TESTS"))
        defaults.testsPerConfig =
            static_cast<unsigned>(std::strtoul(tests, nullptr, 10));
    if (const char *seed = std::getenv("MTC_SEED"))
        defaults.seed = std::strtoull(seed, nullptr, 10);
    return defaults;
}

CampaignConfig
CampaignConfig::fromEnv()
{
    return fromEnv(CampaignConfig{});
}

ExecutorConfig
platformFor(const TestConfig &cfg, PlatformVariant variant)
{
    ExecutorConfig exec = variant == PlatformVariant::Linux
        ? osConfig(cfg.isa)
        : bareMetalConfig(cfg.isa);
    return exec;
}

ConfigSummary
runConfig(const TestConfig &cfg, const CampaignConfig &campaign)
{
    ConfigSummary summary;
    summary.cfg = cfg;

    FlowConfig flow_cfg;
    flow_cfg.iterations = campaign.iterations;
    flow_cfg.exec = platformFor(cfg, campaign.variant);
    flow_cfg.runConventional = campaign.runConventional;

    // Tests are derived from one seed per configuration so every
    // figure sees the same test programs (the paper reuses one set of
    // generated tests across experiments for fairness).
    Rng seeder(campaign.seed ^
               (static_cast<std::uint64_t>(cfg.numThreads) << 40) ^
               (static_cast<std::uint64_t>(cfg.opsPerThread) << 20) ^
               (static_cast<std::uint64_t>(cfg.numLocations) << 8) ^
               static_cast<std::uint64_t>(cfg.wordsPerLine) ^
               (cfg.isa == Isa::X86 ? 0x5a5a5a5aull : 0ull));

    std::uint64_t complete = 0, no_resort = 0, incremental = 0;
    std::uint64_t graphs = 0;
    double affected_weighted = 0.0;
    std::uint64_t affected_count = 0;

    for (unsigned t = 0; t < campaign.testsPerConfig; ++t) {
        const TestProgram program = generateTest(cfg, seeder());
        flow_cfg.seed = seeder();
        ValidationFlow flow(flow_cfg);
        const FlowResult result = flow.runTest(program);

        ++summary.tests;
        summary.avgUniqueSignatures += result.uniqueSignatures;
        summary.avgSignatureBytes += result.intrusive.signatureBytes;
        summary.avgUnrelatedAccesses +=
            result.intrusive.normalizedUnrelated();
        summary.avgCodeRatio += result.code.ratio();
        summary.avgOriginalKB += result.code.originalBytes / 1024.0;
        summary.avgInstrumentedKB +=
            result.code.instrumentedBytes / 1024.0;

        summary.collectiveMs += result.collectiveMs;
        summary.conventionalMs += result.conventionalMs;
        summary.collectiveWork += result.collective.verticesProcessed +
            result.collective.edgesProcessed;
        summary.conventionalWork +=
            result.conventional.verticesProcessed +
            result.conventional.edgesProcessed;

        complete += result.collective.completeSorts;
        no_resort += result.collective.noResortNeeded;
        incremental += result.collective.incrementalResorts;
        graphs += result.collective.graphsChecked;
        affected_weighted +=
            result.collective.affectedFraction.sum();
        affected_count += result.collective.affectedFraction.count();

        summary.avgComputationOverhead += result.computationOverhead;
        summary.avgSortingOverhead += result.sortingOverhead;
        summary.violations += result.violatingSignatures +
            result.assertionFailures + result.platformCrashes;
    }

    const double n = summary.tests ? summary.tests : 1;
    summary.avgUniqueSignatures /= n;
    summary.avgSignatureBytes /= n;
    summary.avgUnrelatedAccesses /= n;
    summary.avgCodeRatio /= n;
    summary.avgOriginalKB /= n;
    summary.avgInstrumentedKB /= n;
    summary.avgComputationOverhead /= n;
    summary.avgSortingOverhead /= n;

    if (graphs) {
        summary.fracComplete = static_cast<double>(complete) / graphs;
        summary.fracNoResort = static_cast<double>(no_resort) / graphs;
        summary.fracIncremental =
            static_cast<double>(incremental) / graphs;
    }
    if (affected_count) {
        summary.avgAffectedFraction =
            affected_weighted / static_cast<double>(affected_count);
    }
    return summary;
}

std::vector<ConfigSummary>
runCampaign(const std::vector<TestConfig> &configs,
            const CampaignConfig &campaign)
{
    std::vector<ConfigSummary> summaries;
    summaries.reserve(configs.size());
    for (const TestConfig &cfg : configs)
        summaries.push_back(runConfig(cfg, campaign));
    return summaries;
}

} // namespace mtc
