#include "harness/campaign.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <utility>

#include "harness/campaign_journal.h"
#include "harness/watchdog.h"
#include "sim/executor.h"
#include "support/log.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "testgen/generator.h"

namespace mtc
{

/**
 * Parse an environment override strictly. strtoull's permissiveness is
 * a campaign killer: MTC_ITERATIONS=abc silently became 0 iterations
 * (an entire campaign measuring nothing), so non-numeric, negative,
 * out-of-range and — where meaningless — zero values all fail fast
 * with the variable's name.
 */
std::uint64_t
parseEnvCount(const char *name, const char *text, bool allow_zero)
{
    if (*text == '\0' || *text == '-' || *text == '+') {
        throw ConfigError(std::string(name) +
                          " must be an unsigned integer, got \"" +
                          text + "\"");
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE) {
        throw ConfigError(std::string(name) +
                          " must be an unsigned integer, got \"" +
                          text + "\"");
    }
    if (!allow_zero && value == 0) {
        throw ConfigError(std::string(name) +
                          " must be non-zero (a zero value would run "
                          "an empty campaign)");
    }
    return value;
}

CampaignConfig
CampaignConfig::fromEnv(CampaignConfig defaults)
{
    if (const char *iters = std::getenv("MTC_ITERATIONS"))
        defaults.iterations =
            parseEnvCount("MTC_ITERATIONS", iters, false);
    if (const char *tests = std::getenv("MTC_TESTS"))
        defaults.testsPerConfig = static_cast<unsigned>(
            parseEnvCount("MTC_TESTS", tests, false));
    if (const char *seed = std::getenv("MTC_SEED"))
        defaults.seed = parseEnvCount("MTC_SEED", seed, true);
    // Zero is meaningful for both parallelism knobs: MTC_THREADS=0
    // asks for every hardware thread, MTC_SHARD_SIZE=0 disables
    // sharding.
    if (const char *threads = std::getenv("MTC_THREADS"))
        defaults.threads = static_cast<unsigned>(
            parseEnvCount("MTC_THREADS", threads, true));
    if (const char *shard = std::getenv("MTC_SHARD_SIZE"))
        defaults.shardSize = static_cast<std::size_t>(
            parseEnvCount("MTC_SHARD_SIZE", shard, true));
    // MTC_JOURNAL is a path, not a count, but gets the same strictness:
    // an empty value is a misconfiguration (probably MTC_JOURNAL= left
    // over from a shell edit), not a request for no journal.
    if (const char *journal = std::getenv("MTC_JOURNAL")) {
        if (*journal == '\0')
            throw ConfigError(
                "MTC_JOURNAL is set but empty; unset it or give a path");
        defaults.journalPath = journal;
    }
    if (const char *timeout = std::getenv("MTC_TEST_TIMEOUT_MS"))
        defaults.testTimeoutMs =
            parseEnvCount("MTC_TEST_TIMEOUT_MS", timeout, true);
    return defaults;
}

CampaignConfig
CampaignConfig::fromEnv()
{
    return fromEnv(CampaignConfig{});
}

ExecutorConfig
platformFor(const TestConfig &cfg, PlatformVariant variant)
{
    ExecutorConfig exec = variant == PlatformVariant::Linux
        ? osConfig(cfg.isa)
        : bareMetalConfig(cfg.isa);
    return exec;
}

namespace
{

/** Seeds of one test, fixed before any test runs. */
struct TestPlan
{
    std::uint64_t genSeed = 0;
    std::uint64_t flowSeed = 0;

    /** Root of this test's private retry-seed stream. */
    std::uint64_t retrySeed = 0;
};

/**
 * Pre-derive every test's seeds from the canonical per-config seeder
 * sequence (two draws per test, in test order — exactly the draws the
 * serial runner made), so tests can run on any worker in any order
 * and still see the very same programs. Retry seeds are the one
 * departure: the serial runner drew retry seeds from the shared
 * sequence, which would let one worker's retry shift every later
 * test's seeds; instead each test's retries come from a private
 * stream rooted in its own seeds, keeping failures local and results
 * independent of scheduling.
 */
std::vector<TestPlan>
deriveTestPlans(const TestConfig &cfg, const CampaignConfig &campaign)
{
    // Tests are derived from one seed per configuration so every
    // figure sees the same test programs (the paper reuses one set of
    // generated tests across experiments for fairness).
    Rng seeder(campaign.seed ^
               (static_cast<std::uint64_t>(cfg.numThreads) << 40) ^
               (static_cast<std::uint64_t>(cfg.opsPerThread) << 20) ^
               (static_cast<std::uint64_t>(cfg.numLocations) << 8) ^
               static_cast<std::uint64_t>(cfg.wordsPerLine) ^
               (cfg.isa == Isa::X86 ? 0x5a5a5a5aull : 0ull));

    std::vector<TestPlan> plans(campaign.testsPerConfig);
    for (TestPlan &plan : plans) {
        plan.genSeed = seeder();
        plan.flowSeed = seeder();
        std::uint64_t mix =
            plan.genSeed ^ (plan.flowSeed * 0x9e3779b97f4a7c15ULL);
        plan.retrySeed = splitMix64(mix);
    }
    return plans;
}

/** Flow template shared by all of one configuration's tests. */
FlowConfig
flowTemplate(const TestConfig &cfg, const CampaignConfig &campaign)
{
    FlowConfig flow_cfg;
    flow_cfg.iterations = campaign.iterations;
    flow_cfg.exec = platformFor(cfg, campaign.variant);
    flow_cfg.runConventional = campaign.runConventional;
    flow_cfg.fault = campaign.fault;
    flow_cfg.recovery = campaign.recovery;
    flow_cfg.shardSize = campaign.shardSize;
    // The campaign parallelizes at test granularity; each flow stays
    // serial inside so campaign.threads workers mean campaign.threads
    // busy cores, not threads^2 oversubscription.
    flow_cfg.threads = 1;
    flow_cfg.exec.stallAfterSteps = campaign.stallAfterSteps;
    return flow_cfg;
}

/**
 * Run one planned test with its retry budget. A test that dies on an
 * internal error (poisoned generation seed, wedged platform, harness
 * bug surfacing under fault injection) is retried with fresh seeds
 * from its private stream; after the budget it is recorded as failed
 * — one bad test must never take down a whole campaign. With a
 * watchdog armed, each attempt runs under its own deadline and
 * cancellation token; a reclaimed attempt counts as hung and is
 * retried exactly like a crashed one.
 */
TestOutcome
runPlannedTest(const TestConfig &cfg, const FlowConfig &flow_template,
               const TestPlan &plan, const CampaignConfig &campaign,
               unsigned test_index, Watchdog *watchdog)
{
    TestOutcome outcome;
    Rng retry_seeder(plan.retrySeed);
    for (unsigned attempt = 0;
         attempt <= campaign.testRetries && !outcome.ok; ++attempt) {
        std::uint64_t gen_seed = plan.genSeed;
        std::uint64_t flow_seed = plan.flowSeed;
        if (attempt) {
            ++outcome.retriesUsed;
            gen_seed = retry_seeder();
            flow_seed = retry_seeder();
        }
        try {
            const TestProgram program = generateTest(cfg, gen_seed);
            FlowConfig flow_cfg = flow_template;
            flow_cfg.seed = flow_seed;
            CancellationToken token;
            std::optional<Watchdog::Guard> deadline;
            if (watchdog && campaign.testTimeoutMs) {
                flow_cfg.cancel = &token;
                deadline.emplace(watchdog->watch(
                    token,
                    std::chrono::milliseconds(campaign.testTimeoutMs)));
            }
            ValidationFlow flow(flow_cfg);
            outcome.result = flow.runTest(program);
            outcome.ok = true;
            outcome.status = TestStatus::Ok;
        } catch (const TestHungError &err) {
            // Must precede the Error handler: a hang is an error
            // event for the breaker AND a distinct verdict — "this
            // config wedges the platform" is the paper's most
            // interesting post-silicon outcome after a violation.
            ++outcome.hungAttempts;
            outcome.status = TestStatus::Hung;
            warn("test " + std::to_string(test_index) + " of " +
                 cfg.name() + " hung (attempt " +
                 std::to_string(attempt + 1) + "): " + err.what());
        } catch (const Error &err) {
            outcome.status = TestStatus::Failed;
            warn("test " + std::to_string(test_index) + " of " +
                 cfg.name() + " failed (attempt " +
                 std::to_string(attempt + 1) + "): " + err.what());
        }
    }
    return outcome;
}

/**
 * Error events one finished unit contributes to its config's circuit
 * breaker: watchdog reclaims, a final failed verdict, platform
 * crashes, and quarantined (undecodable) signatures — every way a
 * config can show it is poisoning the campaign.
 */
unsigned
breakerEvents(const TestOutcome &outcome)
{
    std::uint64_t events = outcome.hungAttempts;
    if (outcome.status == TestStatus::Failed)
        ++events;
    events += outcome.result.platformCrashes;
    events += outcome.result.fault.quarantinedCount();
    return static_cast<unsigned>(events);
}

/**
 * Everything that determines a campaign's deterministic result
 * stream, folded into the journal identity. Operational knobs
 * (threads, watchdog timeout, error budget) are deliberately left
 * out: they may change between a run and its resume.
 */
CampaignJournal::Identity
campaignIdentity(const std::vector<TestConfig> &configs,
                 const CampaignConfig &campaign)
{
    ByteWriter w;
    w.u64(campaign.iterations);
    w.u32(campaign.testsPerConfig);
    w.u64(campaign.seed);
    w.u8(campaign.variant == PlatformVariant::Linux ? 1 : 0);
    w.u8(campaign.runConventional ? 1 : 0);
    w.f64(campaign.fault.bitFlipRate);
    w.f64(campaign.fault.tornStoreRate);
    w.f64(campaign.fault.truncationRate);
    w.f64(campaign.fault.dropRate);
    w.f64(campaign.fault.duplicateRate);
    w.u64(campaign.fault.seed);
    w.u32(campaign.recovery.confirmationRuns);
    w.u64(campaign.recovery.confirmationIterations);
    w.u32(campaign.recovery.crashRetries);
    w.u32(campaign.testRetries);
    w.u64(campaign.shardSize);
    w.u64(campaign.stallAfterSteps);
    w.u32(static_cast<std::uint32_t>(configs.size()));
    std::string names;
    for (const TestConfig &cfg : configs) {
        w.str(cfg.name());
        names += names.empty() ? "" : ",";
        names += cfg.name();
    }

    CampaignJournal::Identity identity;
    identity.digest =
        fnv1a64(w.bytes().data(), w.bytes().size());
    identity.description = "seed=" + std::to_string(campaign.seed) +
        " iterations=" + std::to_string(campaign.iterations) +
        " tests=" + std::to_string(campaign.testsPerConfig) +
        " configs=" + names;
    return identity;
}

/**
 * Fold the outcome slots into a ConfigSummary, strictly in test
 * order: double accumulation is order-sensitive, so folding slots in
 * index order is what makes the summary bit-identical to the serial
 * runner's at any worker count.
 */
ConfigSummary
summarize(const TestConfig &cfg, std::vector<TestOutcome> &outcomes,
          bool tripped, unsigned error_events)
{
    ConfigSummary summary;
    summary.cfg = cfg;
    summary.tripped = tripped;
    summary.errorEvents = error_events;

    std::uint64_t complete = 0, no_resort = 0, incremental = 0;
    std::uint64_t graphs = 0;
    double affected_weighted = 0.0;
    std::uint64_t affected_count = 0;

    for (TestOutcome &outcome : outcomes) {
        summary.testRetriesUsed += outcome.retriesUsed;
        summary.hungAttempts += outcome.hungAttempts;
        if (outcome.status == TestStatus::Skipped) {
            ++summary.skippedTests;
            continue;
        }
        if (!outcome.ok) {
            if (outcome.status == TestStatus::Hung)
                ++summary.hungTests;
            else
                ++summary.failedTests;
            continue;
        }
        const FlowResult &result = outcome.result;

        ++summary.tests;
        summary.avgUniqueSignatures += result.uniqueSignatures;
        summary.avgSignatureBytes += result.intrusive.signatureBytes;
        summary.avgUnrelatedAccesses +=
            result.intrusive.normalizedUnrelated();
        summary.avgCodeRatio += result.code.ratio();
        summary.avgOriginalKB += result.code.originalBytes / 1024.0;
        summary.avgInstrumentedKB +=
            result.code.instrumentedBytes / 1024.0;

        summary.collectiveMs += result.collectiveMs;
        summary.conventionalMs += result.conventionalMs;
        summary.collectiveWork += result.collective.verticesProcessed +
            result.collective.edgesProcessed;
        summary.conventionalWork +=
            result.conventional.verticesProcessed +
            result.conventional.edgesProcessed;

        complete += result.collective.completeSorts;
        no_resort += result.collective.noResortNeeded;
        incremental += result.collective.incrementalResorts;
        graphs += result.collective.graphsChecked;
        affected_weighted +=
            result.collective.affectedFraction.sum();
        affected_count += result.collective.affectedFraction.count();

        summary.avgComputationOverhead += result.computationOverhead;
        summary.avgSortingOverhead += result.sortingOverhead;
        summary.violations += result.violatingSignatures +
            result.assertionFailures + result.platformCrashes;

        summary.injected += result.fault.injected;
        summary.quarantinedSignatures += result.fault.quarantinedCount();
        summary.quarantinedIterations += result.fault.quarantinedIterations;
        summary.confirmedViolations += result.fault.confirmedViolations;
        summary.transientViolations += result.fault.transientViolations;
        summary.crashRetries += result.fault.crashRetries;
    }

    const double n = summary.tests ? summary.tests : 1;
    summary.avgUniqueSignatures /= n;
    summary.avgSignatureBytes /= n;
    summary.avgUnrelatedAccesses /= n;
    summary.avgCodeRatio /= n;
    summary.avgOriginalKB /= n;
    summary.avgInstrumentedKB /= n;
    summary.avgComputationOverhead /= n;
    summary.avgSortingOverhead /= n;

    summary.collectiveGraphs = graphs;
    summary.collectiveCompleteSorts = complete;
    if (graphs) {
        summary.fracComplete = static_cast<double>(complete) / graphs;
        summary.fracNoResort = static_cast<double>(no_resort) / graphs;
        summary.fracIncremental =
            static_cast<double>(incremental) / graphs;
    }
    if (affected_count) {
        summary.avgAffectedFraction =
            affected_weighted / static_cast<double>(affected_count);
    }
    return summary;
}

/**
 * Shared engine of runConfig and runCampaign. Plans every
 * configuration up front so the whole campaign is one flat list of
 * independent (config, test) units — the pool then keeps every worker
 * busy across configuration boundaries instead of draining at the
 * tail of each configuration — and runs each unit through the full
 * resilience stack: journal replay, circuit breaker, watchdog,
 * retries, journal append.
 *
 * @param propagate_setup_errors true (runConfig) rethrows a config
 *        whose setup fails; false (runCampaign) degrades its summary
 *        and continues.
 */
std::vector<ConfigSummary>
runUnits(const std::vector<TestConfig> &configs,
         const CampaignConfig &campaign, bool propagate_setup_errors)
{
    struct ConfigPlan
    {
        FlowConfig flow;
        std::vector<TestPlan> tests;
        bool setupOk = false;
        std::string error;
    };
    std::vector<ConfigPlan> plans(configs.size());
    std::vector<std::pair<std::size_t, std::size_t>> units;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        // Degraded-summary path: a configuration that cannot even be
        // set up yields a marked summary instead of unwinding the
        // remaining configurations.
        try {
            plans[c].flow = flowTemplate(configs[c], campaign);
            plans[c].tests = deriveTestPlans(configs[c], campaign);
            plans[c].setupOk = true;
        } catch (const Error &err) {
            if (propagate_setup_errors)
                throw;
            warn("configuration " + configs[c].name() +
                 " failed, continuing campaign: " + err.what());
            plans[c].error = err.what();
            continue;
        }
        for (std::size_t t = 0; t < plans[c].tests.size(); ++t)
            units.emplace_back(c, t);
    }

    std::vector<std::vector<TestOutcome>> outcomes(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c)
        outcomes[c].resize(plans[c].tests.size());

    std::unique_ptr<CampaignJournal> journal;
    if (!campaign.journalPath.empty()) {
        journal = std::make_unique<CampaignJournal>(
            campaign.journalPath, campaignIdentity(configs, campaign),
            campaign.resume);
    }
    std::unique_ptr<Watchdog> watchdog;
    if (campaign.testTimeoutMs)
        watchdog = std::make_unique<Watchdog>();

    // One breaker per configuration; value-initialized to zero.
    std::vector<std::atomic<unsigned>> error_events(configs.size());
    const auto config_tripped = [&](std::size_t c) {
        return campaign.errorBudget != 0 &&
            error_events[c].load(std::memory_order_relaxed) >=
            campaign.errorBudget;
    };

    const auto run_unit = [&](std::size_t u) {
        const auto [c, t] = units[u];
        TestOutcome &slot = outcomes[c][t];

        if (config_tripped(c)) {
            slot.status = TestStatus::Skipped;
            return;
        }

        if (journal) {
            if (const UnitRecord *record = journal->find(
                    configs[c].name(), static_cast<std::uint32_t>(t))) {
                const TestPlan &plan = plans[c].tests[t];
                if (record->genSeed != plan.genSeed ||
                    record->flowSeed != plan.flowSeed) {
                    throw ConfigError(
                        "--resume: journal record for test " +
                        std::to_string(t) + " of " + configs[c].name() +
                        " carries different seeds than the campaign "
                        "derives — the journal belongs to another run");
                }
                slot = record->outcome;
                // Replayed errors still arm the breaker: a resumed
                // campaign must not forget the poison it already saw.
                error_events[c].fetch_add(breakerEvents(slot),
                                          std::memory_order_relaxed);
                return;
            }
        }

        slot = runPlannedTest(configs[c], plans[c].flow,
                              plans[c].tests[t], campaign,
                              static_cast<unsigned>(t), watchdog.get());
        if (journal) {
            UnitRecord record;
            record.configName = configs[c].name();
            record.testIndex = static_cast<std::uint32_t>(t);
            record.genSeed = plans[c].tests[t].genSeed;
            record.flowSeed = plans[c].tests[t].flowSeed;
            record.outcome = slot;
            record.outcome.result.executions.clear();
            journal->append(record);
        }
        error_events[c].fetch_add(breakerEvents(slot),
                                  std::memory_order_relaxed);
    };

    const unsigned workers = ThreadPool::resolveThreads(campaign.threads);
    if (workers > 1 && units.size() > 1) {
        ThreadPool pool(workers);
        pool.parallelFor(units.size(), run_unit);
    } else {
        for (std::size_t u = 0; u < units.size(); ++u)
            run_unit(u);
    }

    std::vector<ConfigSummary> summaries;
    summaries.reserve(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        if (!plans[c].setupOk) {
            ConfigSummary degraded;
            degraded.cfg = configs[c];
            degraded.degraded = true;
            degraded.error = plans[c].error;
            summaries.push_back(std::move(degraded));
            continue;
        }
        ConfigSummary summary = summarize(
            configs[c], outcomes[c], config_tripped(c),
            error_events[c].load(std::memory_order_relaxed));
        if (summary.tripped) {
            summary.degraded = true;
            summary.error = "circuit breaker tripped after " +
                std::to_string(summary.errorEvents) +
                " error events (budget " +
                std::to_string(campaign.errorBudget) + "); " +
                std::to_string(summary.skippedTests) +
                " of " + std::to_string(outcomes[c].size()) +
                " tests skipped";
        }
        summaries.push_back(std::move(summary));
    }
    return summaries;
}

} // anonymous namespace

ConfigSummary
runConfig(const TestConfig &cfg, const CampaignConfig &campaign)
{
    return runUnits({cfg}, campaign, true).front();
}

std::vector<ConfigSummary>
runCampaign(const std::vector<TestConfig> &configs,
            const CampaignConfig &campaign)
{
    return runUnits(configs, campaign, false);
}

} // namespace mtc
