#include "harness/campaign.h"

#include <cerrno>
#include <cstdlib>

#include "sim/executor.h"
#include "support/log.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "testgen/generator.h"

namespace mtc
{

/**
 * Parse an environment override strictly. strtoull's permissiveness is
 * a campaign killer: MTC_ITERATIONS=abc silently became 0 iterations
 * (an entire campaign measuring nothing), so non-numeric, negative,
 * out-of-range and — where meaningless — zero values all fail fast
 * with the variable's name.
 */
std::uint64_t
parseEnvCount(const char *name, const char *text, bool allow_zero)
{
    if (*text == '\0' || *text == '-' || *text == '+') {
        throw ConfigError(std::string(name) +
                          " must be an unsigned integer, got \"" +
                          text + "\"");
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE) {
        throw ConfigError(std::string(name) +
                          " must be an unsigned integer, got \"" +
                          text + "\"");
    }
    if (!allow_zero && value == 0) {
        throw ConfigError(std::string(name) +
                          " must be non-zero (a zero value would run "
                          "an empty campaign)");
    }
    return value;
}

CampaignConfig
CampaignConfig::fromEnv(CampaignConfig defaults)
{
    if (const char *iters = std::getenv("MTC_ITERATIONS"))
        defaults.iterations =
            parseEnvCount("MTC_ITERATIONS", iters, false);
    if (const char *tests = std::getenv("MTC_TESTS"))
        defaults.testsPerConfig = static_cast<unsigned>(
            parseEnvCount("MTC_TESTS", tests, false));
    if (const char *seed = std::getenv("MTC_SEED"))
        defaults.seed = parseEnvCount("MTC_SEED", seed, true);
    // Zero is meaningful for both parallelism knobs: MTC_THREADS=0
    // asks for every hardware thread, MTC_SHARD_SIZE=0 disables
    // sharding.
    if (const char *threads = std::getenv("MTC_THREADS"))
        defaults.threads = static_cast<unsigned>(
            parseEnvCount("MTC_THREADS", threads, true));
    if (const char *shard = std::getenv("MTC_SHARD_SIZE"))
        defaults.shardSize = static_cast<std::size_t>(
            parseEnvCount("MTC_SHARD_SIZE", shard, true));
    return defaults;
}

CampaignConfig
CampaignConfig::fromEnv()
{
    return fromEnv(CampaignConfig{});
}

ExecutorConfig
platformFor(const TestConfig &cfg, PlatformVariant variant)
{
    ExecutorConfig exec = variant == PlatformVariant::Linux
        ? osConfig(cfg.isa)
        : bareMetalConfig(cfg.isa);
    return exec;
}

namespace
{

/** Seeds of one test, fixed before any test runs. */
struct TestPlan
{
    std::uint64_t genSeed = 0;
    std::uint64_t flowSeed = 0;

    /** Root of this test's private retry-seed stream. */
    std::uint64_t retrySeed = 0;
};

/**
 * Pre-derive every test's seeds from the canonical per-config seeder
 * sequence (two draws per test, in test order — exactly the draws the
 * serial runner made), so tests can run on any worker in any order
 * and still see the very same programs. Retry seeds are the one
 * departure: the serial runner drew retry seeds from the shared
 * sequence, which would let one worker's retry shift every later
 * test's seeds; instead each test's retries come from a private
 * stream rooted in its own seeds, keeping failures local and results
 * independent of scheduling.
 */
std::vector<TestPlan>
deriveTestPlans(const TestConfig &cfg, const CampaignConfig &campaign)
{
    // Tests are derived from one seed per configuration so every
    // figure sees the same test programs (the paper reuses one set of
    // generated tests across experiments for fairness).
    Rng seeder(campaign.seed ^
               (static_cast<std::uint64_t>(cfg.numThreads) << 40) ^
               (static_cast<std::uint64_t>(cfg.opsPerThread) << 20) ^
               (static_cast<std::uint64_t>(cfg.numLocations) << 8) ^
               static_cast<std::uint64_t>(cfg.wordsPerLine) ^
               (cfg.isa == Isa::X86 ? 0x5a5a5a5aull : 0ull));

    std::vector<TestPlan> plans(campaign.testsPerConfig);
    for (TestPlan &plan : plans) {
        plan.genSeed = seeder();
        plan.flowSeed = seeder();
        std::uint64_t mix =
            plan.genSeed ^ (plan.flowSeed * 0x9e3779b97f4a7c15ULL);
        plan.retrySeed = splitMix64(mix);
    }
    return plans;
}

/** Flow template shared by all of one configuration's tests. */
FlowConfig
flowTemplate(const TestConfig &cfg, const CampaignConfig &campaign)
{
    FlowConfig flow_cfg;
    flow_cfg.iterations = campaign.iterations;
    flow_cfg.exec = platformFor(cfg, campaign.variant);
    flow_cfg.runConventional = campaign.runConventional;
    flow_cfg.fault = campaign.fault;
    flow_cfg.recovery = campaign.recovery;
    flow_cfg.shardSize = campaign.shardSize;
    // The campaign parallelizes at test granularity; each flow stays
    // serial inside so campaign.threads workers mean campaign.threads
    // busy cores, not threads^2 oversubscription.
    flow_cfg.threads = 1;
    return flow_cfg;
}

/** One (config, test) unit's result slot. */
struct TestOutcome
{
    FlowResult result;
    bool ok = false;
    unsigned retriesUsed = 0;
};

/**
 * Run one planned test with its retry budget. A test that dies on an
 * internal error (poisoned generation seed, wedged platform, harness
 * bug surfacing under fault injection) is retried with fresh seeds
 * from its private stream; after the budget it is recorded as failed
 * — one bad test must never take down a whole campaign.
 */
TestOutcome
runPlannedTest(const TestConfig &cfg, const FlowConfig &flow_template,
               const TestPlan &plan, const CampaignConfig &campaign,
               unsigned test_index)
{
    TestOutcome outcome;
    Rng retry_seeder(plan.retrySeed);
    for (unsigned attempt = 0;
         attempt <= campaign.testRetries && !outcome.ok; ++attempt) {
        std::uint64_t gen_seed = plan.genSeed;
        std::uint64_t flow_seed = plan.flowSeed;
        if (attempt) {
            ++outcome.retriesUsed;
            gen_seed = retry_seeder();
            flow_seed = retry_seeder();
        }
        try {
            const TestProgram program = generateTest(cfg, gen_seed);
            FlowConfig flow_cfg = flow_template;
            flow_cfg.seed = flow_seed;
            ValidationFlow flow(flow_cfg);
            outcome.result = flow.runTest(program);
            outcome.ok = true;
        } catch (const Error &err) {
            warn("test " + std::to_string(test_index) + " of " +
                 cfg.name() + " failed (attempt " +
                 std::to_string(attempt + 1) + "): " + err.what());
        }
    }
    return outcome;
}

/**
 * Fold the outcome slots into a ConfigSummary, strictly in test
 * order: double accumulation is order-sensitive, so folding slots in
 * index order is what makes the summary bit-identical to the serial
 * runner's at any worker count.
 */
ConfigSummary
summarize(const TestConfig &cfg, std::vector<TestOutcome> &outcomes)
{
    ConfigSummary summary;
    summary.cfg = cfg;

    std::uint64_t complete = 0, no_resort = 0, incremental = 0;
    std::uint64_t graphs = 0;
    double affected_weighted = 0.0;
    std::uint64_t affected_count = 0;

    for (TestOutcome &outcome : outcomes) {
        summary.testRetriesUsed += outcome.retriesUsed;
        if (!outcome.ok) {
            ++summary.failedTests;
            continue;
        }
        const FlowResult &result = outcome.result;

        ++summary.tests;
        summary.avgUniqueSignatures += result.uniqueSignatures;
        summary.avgSignatureBytes += result.intrusive.signatureBytes;
        summary.avgUnrelatedAccesses +=
            result.intrusive.normalizedUnrelated();
        summary.avgCodeRatio += result.code.ratio();
        summary.avgOriginalKB += result.code.originalBytes / 1024.0;
        summary.avgInstrumentedKB +=
            result.code.instrumentedBytes / 1024.0;

        summary.collectiveMs += result.collectiveMs;
        summary.conventionalMs += result.conventionalMs;
        summary.collectiveWork += result.collective.verticesProcessed +
            result.collective.edgesProcessed;
        summary.conventionalWork +=
            result.conventional.verticesProcessed +
            result.conventional.edgesProcessed;

        complete += result.collective.completeSorts;
        no_resort += result.collective.noResortNeeded;
        incremental += result.collective.incrementalResorts;
        graphs += result.collective.graphsChecked;
        affected_weighted +=
            result.collective.affectedFraction.sum();
        affected_count += result.collective.affectedFraction.count();

        summary.avgComputationOverhead += result.computationOverhead;
        summary.avgSortingOverhead += result.sortingOverhead;
        summary.violations += result.violatingSignatures +
            result.assertionFailures + result.platformCrashes;

        summary.injected += result.fault.injected;
        summary.quarantinedSignatures += result.fault.quarantinedCount();
        summary.quarantinedIterations += result.fault.quarantinedIterations;
        summary.confirmedViolations += result.fault.confirmedViolations;
        summary.transientViolations += result.fault.transientViolations;
        summary.crashRetries += result.fault.crashRetries;
    }

    const double n = summary.tests ? summary.tests : 1;
    summary.avgUniqueSignatures /= n;
    summary.avgSignatureBytes /= n;
    summary.avgUnrelatedAccesses /= n;
    summary.avgCodeRatio /= n;
    summary.avgOriginalKB /= n;
    summary.avgInstrumentedKB /= n;
    summary.avgComputationOverhead /= n;
    summary.avgSortingOverhead /= n;

    summary.collectiveGraphs = graphs;
    summary.collectiveCompleteSorts = complete;
    if (graphs) {
        summary.fracComplete = static_cast<double>(complete) / graphs;
        summary.fracNoResort = static_cast<double>(no_resort) / graphs;
        summary.fracIncremental =
            static_cast<double>(incremental) / graphs;
    }
    if (affected_count) {
        summary.avgAffectedFraction =
            affected_weighted / static_cast<double>(affected_count);
    }
    return summary;
}

} // anonymous namespace

ConfigSummary
runConfig(const TestConfig &cfg, const CampaignConfig &campaign)
{
    const FlowConfig flow_cfg = flowTemplate(cfg, campaign);
    const std::vector<TestPlan> plans = deriveTestPlans(cfg, campaign);

    std::vector<TestOutcome> outcomes(plans.size());
    const auto run_one = [&](std::size_t t) {
        outcomes[t] = runPlannedTest(cfg, flow_cfg, plans[t], campaign,
                                     static_cast<unsigned>(t));
    };

    const unsigned workers = ThreadPool::resolveThreads(campaign.threads);
    if (workers > 1 && plans.size() > 1) {
        ThreadPool pool(workers);
        pool.parallelFor(plans.size(), run_one);
    } else {
        for (std::size_t t = 0; t < plans.size(); ++t)
            run_one(t);
    }
    return summarize(cfg, outcomes);
}

std::vector<ConfigSummary>
runCampaign(const std::vector<TestConfig> &configs,
            const CampaignConfig &campaign)
{
    // Plan every configuration up front so the whole campaign is one
    // flat list of independent (config, test) units — the pool then
    // keeps every worker busy across configuration boundaries instead
    // of draining at the tail of each configuration.
    struct ConfigPlan
    {
        FlowConfig flow;
        std::vector<TestPlan> tests;
        bool setupOk = false;
        std::string error;
    };
    std::vector<ConfigPlan> plans(configs.size());
    std::vector<std::pair<std::size_t, std::size_t>> units;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        // Degraded-summary path: a configuration that cannot even be
        // set up yields a marked summary instead of unwinding the
        // remaining configurations.
        try {
            plans[c].flow = flowTemplate(configs[c], campaign);
            plans[c].tests = deriveTestPlans(configs[c], campaign);
            plans[c].setupOk = true;
        } catch (const Error &err) {
            warn("configuration " + configs[c].name() +
                 " failed, continuing campaign: " + err.what());
            plans[c].error = err.what();
            continue;
        }
        for (std::size_t t = 0; t < plans[c].tests.size(); ++t)
            units.emplace_back(c, t);
    }

    std::vector<std::vector<TestOutcome>> outcomes(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c)
        outcomes[c].resize(plans[c].tests.size());

    const auto run_unit = [&](std::size_t u) {
        const auto [c, t] = units[u];
        outcomes[c][t] =
            runPlannedTest(configs[c], plans[c].flow, plans[c].tests[t],
                           campaign, static_cast<unsigned>(t));
    };

    const unsigned workers = ThreadPool::resolveThreads(campaign.threads);
    if (workers > 1 && units.size() > 1) {
        ThreadPool pool(workers);
        pool.parallelFor(units.size(), run_unit);
    } else {
        for (std::size_t u = 0; u < units.size(); ++u)
            run_unit(u);
    }

    std::vector<ConfigSummary> summaries;
    summaries.reserve(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        if (!plans[c].setupOk) {
            ConfigSummary degraded;
            degraded.cfg = configs[c];
            degraded.degraded = true;
            degraded.error = plans[c].error;
            summaries.push_back(std::move(degraded));
            continue;
        }
        summaries.push_back(
            summarize(configs[c], outcomes[c]));
    }
    return summaries;
}

} // namespace mtc
