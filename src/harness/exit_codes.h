/**
 * @file
 * Process exit codes shared by every MTraceCheck CLI tool
 * (mtc_validate, mtc_coordinator, mtc_check).
 *
 * The codes are an external contract: CI scripts, the README table
 * and the exit-code unit test all assert against these constants, so
 * a new verdict gets a new code here (and a README row) rather than
 * reusing an old one. Severity ordering is part of the contract too —
 * when a run earns several verdicts the tools report the smallest
 * applicable code below 7 in this priority order: violation (2)
 * beats trace fault (7) beats breaker (6) beats hang (5) beats
 * crash/failed (4) beats corruption-only (3).
 */

#ifndef MTC_HARNESS_EXIT_CODES_H
#define MTC_HARNESS_EXIT_CODES_H

namespace mtc
{

/** No violations, no faults, nothing degraded. */
inline constexpr int kExitClean = 0;

/** Bad flags/environment, or an internal error before any verdict. */
inline constexpr int kExitConfigError = 1;

/** At least one MCM violation (raw or K-confirmed) was observed. */
inline constexpr int kExitViolation = 2;

/** Only quarantined corruption / transient (unconfirmed) violations:
 * every anomaly was attributed to result-collection faults, not the
 * memory system. */
inline constexpr int kExitCorruptionOnly = 3;

/** Failed or abandoned units, platform crash retries, or a degraded
 * (non-breaker) config summary. */
inline constexpr int kExitPlatformCrash = 4;

/** At least one test hung (cooperatively cancelled or reclaimed by
 * SIGKILL). */
inline constexpr int kExitHang = 5;

/** A per-config circuit breaker tripped and skipped the config's
 * remaining tests. */
inline constexpr int kExitBreakerTripped = 6;

/** mtc_check only: the trace itself was faulted (torn, corrupt,
 * version-skewed, or fingerprint-mismatched) — in degraded mode the
 * summary above it covers the longest intact prefix. */
inline constexpr int kExitTraceFault = 7;

} // namespace mtc

#endif // MTC_HARNESS_EXIT_CODES_H
