#include "harness/dist_campaign.h"

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <csignal>

#include "dist/protocol.h"
#include "dist/worker_client.h"
#include "harness/campaign_journal.h"
#include "harness/watchdog.h"
#include "support/journal.h"
#include "support/process.h"

namespace mtc
{

namespace
{

/** Spec framing: magic + version, so a worker fed garbage (or a spec
 * from an incompatible build) fails loudly instead of deriving a
 * silently different campaign. */
constexpr std::uint32_t kSpecMagic = 0x4D544353; // "MTCS"
constexpr std::uint32_t kSpecVersion = 1;

} // anonymous namespace

std::vector<std::uint8_t>
encodeCampaignSpec(const CampaignSpec &spec)
{
    const CampaignConfig &c = spec.campaign;
    ByteWriter w;
    w.u32(kSpecMagic);
    w.u32(kSpecVersion);
    w.u64(c.iterations);
    w.u32(c.testsPerConfig);
    w.u64(c.seed);
    w.u8(c.variant == PlatformVariant::Linux ? 1 : 0);
    w.u8(c.runConventional ? 1 : 0);
    w.f64(c.fault.bitFlipRate);
    w.f64(c.fault.tornStoreRate);
    w.f64(c.fault.truncationRate);
    w.f64(c.fault.dropRate);
    w.f64(c.fault.duplicateRate);
    w.u64(c.fault.seed);
    w.u32(c.recovery.confirmationRuns);
    w.u64(c.recovery.confirmationIterations);
    w.u32(c.recovery.crashRetries);
    w.u32(c.testRetries);
    w.u64(c.shardSize);
    w.u64(c.stallAfterSteps);
    w.u8(c.stallUncooperative ? 1 : 0);
    w.u64(c.testTimeoutMs);
    w.u32(static_cast<std::uint32_t>(spec.configs.size()));
    for (const TestConfig &cfg : spec.configs) {
        w.u8(static_cast<std::uint8_t>(cfg.isa));
        w.u32(cfg.numThreads);
        w.u32(cfg.opsPerThread);
        w.u32(cfg.numLocations);
        w.f64(cfg.loadFraction);
        w.u32(cfg.wordsPerLine);
        w.u32(cfg.bytesPerWord);
        w.u32(cfg.lineBytes);
        w.u32(cfg.fencePercent);
    }
    return w.bytes();
}

CampaignSpec
decodeCampaignSpec(const std::vector<std::uint8_t> &bytes)
{
    try {
        ByteReader r(bytes);
        if (r.u32() != kSpecMagic)
            throw DistError("campaign spec: bad magic");
        if (const std::uint32_t version = r.u32();
            version != kSpecVersion) {
            throw DistError("campaign spec: version " +
                            std::to_string(version) + ", expected " +
                            std::to_string(kSpecVersion));
        }
        CampaignSpec spec;
        CampaignConfig &c = spec.campaign;
        c.iterations = r.u64();
        c.testsPerConfig = r.u32();
        c.seed = r.u64();
        c.variant = r.u8() ? PlatformVariant::Linux
                           : PlatformVariant::BareMetal;
        c.runConventional = r.u8() != 0;
        c.fault.bitFlipRate = r.f64();
        c.fault.tornStoreRate = r.f64();
        c.fault.truncationRate = r.f64();
        c.fault.dropRate = r.f64();
        c.fault.duplicateRate = r.f64();
        c.fault.seed = r.u64();
        c.recovery.confirmationRuns = r.u32();
        c.recovery.confirmationIterations = r.u64();
        c.recovery.crashRetries = r.u32();
        c.testRetries = r.u32();
        c.shardSize = static_cast<std::size_t>(r.u64());
        c.stallAfterSteps = r.u64();
        c.stallUncooperative = r.u8() != 0;
        c.testTimeoutMs = r.u64();
        const std::uint32_t count = r.u32();
        spec.configs.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            TestConfig cfg;
            cfg.isa = static_cast<Isa>(r.u8());
            cfg.numThreads = r.u32();
            cfg.opsPerThread = r.u32();
            cfg.numLocations = r.u32();
            cfg.loadFraction = r.f64();
            cfg.wordsPerLine = r.u32();
            cfg.bytesPerWord = r.u32();
            cfg.lineBytes = r.u32();
            cfg.fencePercent = r.u32();
            spec.configs.push_back(cfg);
        }
        return spec;
    } catch (const JournalError &err) {
        throw DistError(std::string("campaign spec truncated: ") +
                        err.what());
    }
}

std::vector<std::uint8_t>
encodeUnitRequest(std::size_t config_index, std::size_t test_index)
{
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(config_index));
    w.u32(static_cast<std::uint32_t>(test_index));
    return w.bytes();
}

std::pair<std::size_t, std::size_t>
decodeUnitRequest(const std::vector<std::uint8_t> &request)
{
    try {
        ByteReader r(request);
        const std::size_t c = r.u32();
        const std::size_t t = r.u32();
        return {c, t};
    } catch (const JournalError &err) {
        throw DistError(std::string("malformed unit request: ") +
                        err.what());
    }
}

CampaignUnitRunner::CampaignUnitRunner(CampaignSpec spec_arg)
    : spec(std::move(spec_arg))
{
    flows.reserve(spec.configs.size());
    plans.reserve(spec.configs.size());
    for (const TestConfig &cfg : spec.configs) {
        FlowConfig flow = flowTemplate(cfg, spec.campaign);
        // Hard-failure drills are sandbox-scoped; see the file
        // comment of dist_campaign.h.
        flow.exec.dieAfterRuns = 0;
        flow.exec.leakAfterRuns = 0;
        flows.push_back(std::move(flow));
        plans.push_back(deriveTestPlans(cfg, spec.campaign));
    }
    if (spec.campaign.testTimeoutMs)
        watchdog = std::make_unique<Watchdog>();
}

CampaignUnitRunner::~CampaignUnitRunner() = default;

std::vector<std::uint8_t>
CampaignUnitRunner::run(const std::vector<std::uint8_t> &request)
{
    const auto [c, t] = decodeUnitRequest(request);
    if (c >= spec.configs.size() || t >= plans[c].size())
        throw DistError("unit request (" + std::to_string(c) + ", " +
                        std::to_string(t) +
                        ") is outside the campaign spec");
    UnitRecord record;
    record.configName = spec.configs[c].name();
    record.testIndex = static_cast<std::uint32_t>(t);
    record.genSeed = plans[c][t].genSeed;
    record.flowSeed = plans[c][t].flowSeed;
    record.outcome = runPlannedTest(spec.configs[c], flows[c],
                                    plans[c][t], spec.campaign,
                                    static_cast<unsigned>(t),
                                    watchdog.get());
    record.outcome.result.executions.clear();
    return encodeUnitRecord(record);
}

pid_t
forkCampaignWorker(std::uint16_t port, unsigned index,
                   std::uint64_t exit_after_units, int listener_fd)
{
    const pid_t pid = ::fork();
    if (pid < 0)
        throw DistError(std::string("fabric fork failed: ") +
                        std::strerror(errno));
    if (pid > 0)
        return pid;

    // --- loopback worker child ---
    if (listener_fd >= 0)
        ::close(listener_fd); // see the header: inherited copies of
                              // the listener outlive its shutdown
#ifdef __linux__
    // Die with the parent: a SIGKILLed campaign (the ci.sh
    // coordinator-crash smoke) must not leave orphan workers spinning
    // in reconnect backoff.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() == 1)
        ::_exit(kWorkerExitInternal); // parent raced away already
#endif
    try {
        WorkerClientConfig cfg;
        cfg.port = port;
        cfg.name = "loop-" + std::to_string(index);
        cfg.heartbeatMs = 500;
        // Short leash: after Done (or a dead coordinator) the fleet
        // should drain in well under a second, not serve a full
        // operator-scale backoff schedule.
        cfg.maxReconnects = 3;
        cfg.backoffBaseMs = 50;
        cfg.backoffCapMs = 400;
        cfg.exitAfterUnits = exit_after_units;
        std::unique_ptr<CampaignUnitRunner> runner;
        runWorkerClient(
            cfg,
            [&runner](const std::vector<std::uint8_t> &spec_bytes) {
                runner = std::make_unique<CampaignUnitRunner>(
                    decodeCampaignSpec(spec_bytes));
            },
            [&runner](std::uint64_t,
                      const std::vector<std::uint8_t> &request) {
                return runner->run(request);
            });
        ::_exit(0);
    } catch (...) {
        ::_exit(kWorkerExitInternal);
    }
}

} // namespace mtc
