#include "harness/dist_campaign.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <csignal>

#include "dist/protocol.h"
#include "dist/worker_client.h"
#include "harness/campaign_journal.h"
#include "harness/watchdog.h"
#include "support/journal.h"
#include "support/process.h"

namespace mtc
{

namespace
{

/** Spec framing: magic + version, so a worker fed garbage (or a spec
 * from an incompatible build) fails loudly instead of deriving a
 * silently different campaign. */
constexpr std::uint32_t kSpecMagic = 0x4D544353; // "MTCS"
// v2: keepSignatures + errorBudget appended after the config list.
// keepSignatures tells remote workers to carry each unit's sorted
// unique signature stream home for trace dumps; errorBudget rides
// along so an offline checker fed this spec reproduces the breaker's
// tripped/degraded verdicts (the budget is operational for identity
// purposes but result-shaping for summaries).
constexpr std::uint32_t kSpecVersion = 2;

} // anonymous namespace

std::vector<std::uint8_t>
encodeCampaignSpec(const CampaignSpec &spec)
{
    const CampaignConfig &c = spec.campaign;
    ByteWriter w;
    w.u32(kSpecMagic);
    w.u32(kSpecVersion);
    w.u64(c.iterations);
    w.u32(c.testsPerConfig);
    w.u64(c.seed);
    w.u8(c.variant == PlatformVariant::Linux ? 1 : 0);
    w.u8(c.runConventional ? 1 : 0);
    w.f64(c.fault.bitFlipRate);
    w.f64(c.fault.tornStoreRate);
    w.f64(c.fault.truncationRate);
    w.f64(c.fault.dropRate);
    w.f64(c.fault.duplicateRate);
    w.u64(c.fault.seed);
    w.u32(c.recovery.confirmationRuns);
    w.u64(c.recovery.confirmationIterations);
    w.u32(c.recovery.crashRetries);
    w.u32(c.testRetries);
    w.u64(c.shardSize);
    w.u64(c.stallAfterSteps);
    w.u8(c.stallUncooperative ? 1 : 0);
    w.u64(c.testTimeoutMs);
    w.u32(static_cast<std::uint32_t>(spec.configs.size()));
    for (const TestConfig &cfg : spec.configs) {
        w.u8(static_cast<std::uint8_t>(cfg.isa));
        w.u32(cfg.numThreads);
        w.u32(cfg.opsPerThread);
        w.u32(cfg.numLocations);
        w.f64(cfg.loadFraction);
        w.u32(cfg.wordsPerLine);
        w.u32(cfg.bytesPerWord);
        w.u32(cfg.lineBytes);
        w.u32(cfg.fencePercent);
    }
    // v2 tail. The dump path itself never ships — it is coordinator-
    // local — only the fact that streams must be kept.
    w.u8(c.keepSignatureStreams || !c.dumpTracePath.empty() ? 1 : 0);
    w.u32(c.errorBudget);
    return w.bytes();
}

CampaignSpec
decodeCampaignSpec(const std::vector<std::uint8_t> &bytes)
{
    try {
        ByteReader r(bytes);
        if (r.u32() != kSpecMagic)
            throw DistError("campaign spec: bad magic");
        if (const std::uint32_t version = r.u32();
            version != kSpecVersion) {
            throw DistError("campaign spec: version " +
                            std::to_string(version) + ", expected " +
                            std::to_string(kSpecVersion));
        }
        CampaignSpec spec;
        CampaignConfig &c = spec.campaign;
        c.iterations = r.u64();
        c.testsPerConfig = r.u32();
        c.seed = r.u64();
        c.variant = r.u8() ? PlatformVariant::Linux
                           : PlatformVariant::BareMetal;
        c.runConventional = r.u8() != 0;
        c.fault.bitFlipRate = r.f64();
        c.fault.tornStoreRate = r.f64();
        c.fault.truncationRate = r.f64();
        c.fault.dropRate = r.f64();
        c.fault.duplicateRate = r.f64();
        c.fault.seed = r.u64();
        c.recovery.confirmationRuns = r.u32();
        c.recovery.confirmationIterations = r.u64();
        c.recovery.crashRetries = r.u32();
        c.testRetries = r.u32();
        c.shardSize = static_cast<std::size_t>(r.u64());
        c.stallAfterSteps = r.u64();
        c.stallUncooperative = r.u8() != 0;
        c.testTimeoutMs = r.u64();
        const std::uint32_t count = r.u32();
        // A TestConfig encodes to 37 bytes; a count the payload
        // cannot hold must fail as truncation in the loop below, not
        // as a giant up-front allocation.
        spec.configs.reserve(std::min<std::size_t>(
            count, r.remaining() / 37));
        for (std::uint32_t i = 0; i < count; ++i) {
            TestConfig cfg;
            cfg.isa = static_cast<Isa>(r.u8());
            cfg.numThreads = r.u32();
            cfg.opsPerThread = r.u32();
            cfg.numLocations = r.u32();
            cfg.loadFraction = r.f64();
            cfg.wordsPerLine = r.u32();
            cfg.bytesPerWord = r.u32();
            cfg.lineBytes = r.u32();
            cfg.fencePercent = r.u32();
            spec.configs.push_back(cfg);
        }
        c.keepSignatureStreams = r.u8() != 0;
        c.errorBudget = r.u32();
        return spec;
    } catch (const JournalError &err) {
        throw DistError(std::string("campaign spec truncated: ") +
                        err.what());
    }
}

std::vector<std::uint8_t>
encodeUnitRequest(std::size_t config_index, std::size_t test_index)
{
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(config_index));
    w.u32(static_cast<std::uint32_t>(test_index));
    return w.bytes();
}

std::pair<std::size_t, std::size_t>
decodeUnitRequest(const std::vector<std::uint8_t> &request)
{
    try {
        ByteReader r(request);
        const std::size_t c = r.u32();
        const std::size_t t = r.u32();
        return {c, t};
    } catch (const JournalError &err) {
        throw DistError(std::string("malformed unit request: ") +
                        err.what());
    }
}

CampaignUnitRunner::CampaignUnitRunner(CampaignSpec spec_arg)
    : spec(std::move(spec_arg))
{
    flows.reserve(spec.configs.size());
    plans.reserve(spec.configs.size());
    for (const TestConfig &cfg : spec.configs) {
        FlowConfig flow = flowTemplate(cfg, spec.campaign);
        // Hard-failure drills are sandbox-scoped; see the file
        // comment of dist_campaign.h.
        flow.exec.dieAfterRuns = 0;
        flow.exec.leakAfterRuns = 0;
        flows.push_back(std::move(flow));
        plans.push_back(deriveTestPlans(cfg, spec.campaign));
    }
    if (spec.campaign.testTimeoutMs)
        watchdog = std::make_unique<Watchdog>();
}

CampaignUnitRunner::~CampaignUnitRunner() = default;

std::vector<std::uint8_t>
CampaignUnitRunner::run(const std::vector<std::uint8_t> &request)
{
    const auto [c, t] = decodeUnitRequest(request);
    if (c >= spec.configs.size() || t >= plans[c].size())
        throw DistError("unit request (" + std::to_string(c) + ", " +
                        std::to_string(t) +
                        ") is outside the campaign spec");
    UnitRecord record;
    record.configName = spec.configs[c].name();
    record.testIndex = static_cast<std::uint32_t>(t);
    record.genSeed = plans[c][t].genSeed;
    record.flowSeed = plans[c][t].flowSeed;
    record.outcome = runPlannedTest(spec.configs[c], flows[c],
                                    plans[c][t], spec.campaign,
                                    static_cast<unsigned>(t),
                                    watchdog.get());
    record.outcome.result.executions.clear();
    return encodeUnitRecord(record);
}

std::uint64_t
unitRecordDigest(const std::vector<std::uint8_t> &payload)
{
    try {
        UnitRecord rec = decodeUnitRecord(payload);
        // Zero every wall-clock field, then digest the canonical
        // re-encoding: two honest executions of the same unit differ
        // only in timing, a dishonest one differs in substance.
        rec.outcome.result.collectiveMs = 0.0;
        rec.outcome.result.conventionalMs = 0.0;
        rec.outcome.result.decodeMs = 0.0;
        rec.outcome.result.profile =
            decltype(rec.outcome.result.profile){};
        const std::vector<std::uint8_t> canon = encodeUnitRecord(rec);
        return fnv1a64(canon.data(), canon.size());
    } catch (const JournalError &) {
        // Not a decodable record: digest the raw bytes under a
        // different seed so garbage never collides with a well-formed
        // record's digest.
        return fnv1a64(payload.data(), payload.size(),
                       0x84222325cbf29ce4ull);
    }
}

pid_t
forkCampaignWorker(std::uint16_t port, unsigned index,
                   const LoopbackWorkerOptions &opts)
{
    const pid_t pid = ::fork();
    if (pid < 0)
        throw DistError(std::string("fabric fork failed: ") +
                        std::strerror(errno));
    if (pid > 0)
        return pid;

    // --- loopback worker child ---
    if (opts.listenerFd >= 0)
        ::close(opts.listenerFd); // see the header: inherited copies
                                  // of the listener outlive its
                                  // shutdown
#ifdef __linux__
    // Die with the parent: a SIGKILLed campaign (the ci.sh
    // coordinator-crash smoke) must not leave orphan workers spinning
    // in reconnect backoff.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() == 1)
        ::_exit(kWorkerExitInternal); // parent raced away already
#endif
    // The journal flock must die with the coordinator, not with the
    // slowest loopback worker the PDEATHSIG reaches.
    closeParentOnlyFds();
    try {
        WorkerClientConfig cfg;
        cfg.port = port;
        cfg.name = "loop-" + std::to_string(index);
        cfg.heartbeatMs = 500;
        // Short leash: after Done (or a dead coordinator) the fleet
        // should drain in well under a second, not serve a full
        // operator-scale backoff schedule. Under injected network
        // faults every session is expected to die repeatedly — give
        // the chaos drill enough consecutive failures to ride out an
        // unlucky handshake streak.
        cfg.maxReconnects = opts.netFault.any() ? 25 : 3;
        cfg.backoffBaseMs = 50;
        cfg.backoffCapMs = 400;
        cfg.exitAfterUnits = opts.exitAfterUnits;
        cfg.key = opts.key;
        cfg.netFault = opts.netFault;
        const bool corrupt = opts.corruptResults;
        std::unique_ptr<CampaignUnitRunner> runner;
        runWorkerClient(
            cfg,
            [&runner](const std::vector<std::uint8_t> &spec_bytes) {
                runner = std::make_unique<CampaignUnitRunner>(
                    decodeCampaignSpec(spec_bytes));
            },
            [&runner, corrupt](
                std::uint64_t,
                const std::vector<std::uint8_t> &request) {
                std::vector<std::uint8_t> response =
                    runner->run(request);
                if (corrupt) {
                    // Byzantine drill: a plausible lie. The record
                    // still decodes and all framing checksums pass —
                    // only a cross-worker audit can tell it from the
                    // truth.
                    UnitRecord rec = decodeUnitRecord(response);
                    rec.outcome.result.uniqueSignatures += 1;
                    rec.outcome.result.signatureSetDigest ^=
                        0x5851f42d4c957f2dull;
                    response = encodeUnitRecord(rec);
                }
                return response;
            });
        ::_exit(0);
    } catch (...) {
        ::_exit(kWorkerExitInternal);
    }
}

} // namespace mtc
