# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/mcm_test[1]_include.cmake")
include("/root/repo/build/tests/testgen_test[1]_include.cmake")
include("/root/repo/build/tests/litmus_test[1]_include.cmake")
include("/root/repo/build/tests/po_edges_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/ws_inference_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_plan_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/codesize_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/coherent_test[1]_include.cmake")
include("/root/repo/build/tests/order_table_test[1]_include.cmake")
include("/root/repo/build/tests/pruning_test[1]_include.cmake")
include("/root/repo/build/tests/bug_injection_test[1]_include.cmake")
include("/root/repo/build/tests/checker_test[1]_include.cmake")
include("/root/repo/build/tests/litmus_outcomes_test[1]_include.cmake")
include("/root/repo/build/tests/kmedoids_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/campaign_test[1]_include.cmake")
