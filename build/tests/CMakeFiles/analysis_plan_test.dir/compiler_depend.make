# Empty compiler generated dependencies file for analysis_plan_test.
# This may be replaced when dependencies are built.
