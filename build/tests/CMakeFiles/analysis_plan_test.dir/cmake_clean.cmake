file(REMOVE_RECURSE
  "CMakeFiles/analysis_plan_test.dir/analysis_plan_test.cpp.o"
  "CMakeFiles/analysis_plan_test.dir/analysis_plan_test.cpp.o.d"
  "analysis_plan_test"
  "analysis_plan_test.pdb"
  "analysis_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
