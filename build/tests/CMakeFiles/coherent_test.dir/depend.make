# Empty dependencies file for coherent_test.
# This may be replaced when dependencies are built.
