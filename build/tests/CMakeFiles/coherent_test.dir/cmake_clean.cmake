file(REMOVE_RECURSE
  "CMakeFiles/coherent_test.dir/coherent_test.cpp.o"
  "CMakeFiles/coherent_test.dir/coherent_test.cpp.o.d"
  "coherent_test"
  "coherent_test.pdb"
  "coherent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
