# Empty dependencies file for ws_inference_test.
# This may be replaced when dependencies are built.
