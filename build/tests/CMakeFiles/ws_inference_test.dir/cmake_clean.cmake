file(REMOVE_RECURSE
  "CMakeFiles/ws_inference_test.dir/ws_inference_test.cpp.o"
  "CMakeFiles/ws_inference_test.dir/ws_inference_test.cpp.o.d"
  "ws_inference_test"
  "ws_inference_test.pdb"
  "ws_inference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
