file(REMOVE_RECURSE
  "CMakeFiles/mcm_test.dir/mcm_test.cpp.o"
  "CMakeFiles/mcm_test.dir/mcm_test.cpp.o.d"
  "mcm_test"
  "mcm_test.pdb"
  "mcm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
