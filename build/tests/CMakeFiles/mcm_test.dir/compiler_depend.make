# Empty compiler generated dependencies file for mcm_test.
# This may be replaced when dependencies are built.
