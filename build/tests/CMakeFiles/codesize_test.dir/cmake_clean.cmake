file(REMOVE_RECURSE
  "CMakeFiles/codesize_test.dir/codesize_test.cpp.o"
  "CMakeFiles/codesize_test.dir/codesize_test.cpp.o.d"
  "codesize_test"
  "codesize_test.pdb"
  "codesize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
