# Empty dependencies file for order_table_test.
# This may be replaced when dependencies are built.
