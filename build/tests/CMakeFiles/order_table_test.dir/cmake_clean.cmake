file(REMOVE_RECURSE
  "CMakeFiles/order_table_test.dir/order_table_test.cpp.o"
  "CMakeFiles/order_table_test.dir/order_table_test.cpp.o.d"
  "order_table_test"
  "order_table_test.pdb"
  "order_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
