file(REMOVE_RECURSE
  "CMakeFiles/litmus_outcomes_test.dir/litmus_outcomes_test.cpp.o"
  "CMakeFiles/litmus_outcomes_test.dir/litmus_outcomes_test.cpp.o.d"
  "litmus_outcomes_test"
  "litmus_outcomes_test.pdb"
  "litmus_outcomes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_outcomes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
