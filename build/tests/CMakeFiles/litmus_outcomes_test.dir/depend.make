# Empty dependencies file for litmus_outcomes_test.
# This may be replaced when dependencies are built.
