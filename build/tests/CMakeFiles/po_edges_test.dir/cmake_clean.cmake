file(REMOVE_RECURSE
  "CMakeFiles/po_edges_test.dir/po_edges_test.cpp.o"
  "CMakeFiles/po_edges_test.dir/po_edges_test.cpp.o.d"
  "po_edges_test"
  "po_edges_test.pdb"
  "po_edges_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/po_edges_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
