# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for po_edges_test.
