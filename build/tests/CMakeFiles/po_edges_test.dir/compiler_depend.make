# Empty compiler generated dependencies file for po_edges_test.
# This may be replaced when dependencies are built.
