# Empty dependencies file for mtc_validate.
# This may be replaced when dependencies are built.
