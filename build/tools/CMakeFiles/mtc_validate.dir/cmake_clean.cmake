file(REMOVE_RECURSE
  "CMakeFiles/mtc_validate.dir/mtc_validate.cpp.o"
  "CMakeFiles/mtc_validate.dir/mtc_validate.cpp.o.d"
  "mtc_validate"
  "mtc_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtc_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
