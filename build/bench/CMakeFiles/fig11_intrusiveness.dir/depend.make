# Empty dependencies file for fig11_intrusiveness.
# This may be replaced when dependencies are built.
