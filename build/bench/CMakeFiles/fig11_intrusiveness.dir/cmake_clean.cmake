file(REMOVE_RECURSE
  "CMakeFiles/fig11_intrusiveness.dir/fig11_intrusiveness.cpp.o"
  "CMakeFiles/fig11_intrusiveness.dir/fig11_intrusiveness.cpp.o.d"
  "fig11_intrusiveness"
  "fig11_intrusiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_intrusiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
