file(REMOVE_RECURSE
  "CMakeFiles/fig06_kmedoids.dir/fig06_kmedoids.cpp.o"
  "CMakeFiles/fig06_kmedoids.dir/fig06_kmedoids.cpp.o.d"
  "fig06_kmedoids"
  "fig06_kmedoids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_kmedoids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
