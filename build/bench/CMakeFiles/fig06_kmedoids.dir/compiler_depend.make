# Empty compiler generated dependencies file for fig06_kmedoids.
# This may be replaced when dependencies are built.
