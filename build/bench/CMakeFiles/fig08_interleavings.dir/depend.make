# Empty dependencies file for fig08_interleavings.
# This may be replaced when dependencies are built.
