file(REMOVE_RECURSE
  "CMakeFiles/fig08_interleavings.dir/fig08_interleavings.cpp.o"
  "CMakeFiles/fig08_interleavings.dir/fig08_interleavings.cpp.o.d"
  "fig08_interleavings"
  "fig08_interleavings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_interleavings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
