file(REMOVE_RECURSE
  "CMakeFiles/tab3_bug_injection.dir/tab3_bug_injection.cpp.o"
  "CMakeFiles/tab3_bug_injection.dir/tab3_bug_injection.cpp.o.d"
  "tab3_bug_injection"
  "tab3_bug_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_bug_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
