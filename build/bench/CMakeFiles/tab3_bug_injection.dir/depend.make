# Empty dependencies file for tab3_bug_injection.
# This may be replaced when dependencies are built.
