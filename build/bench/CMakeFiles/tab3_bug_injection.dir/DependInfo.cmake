
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab3_bug_injection.cpp" "bench/CMakeFiles/tab3_bug_injection.dir/tab3_bug_injection.cpp.o" "gcc" "bench/CMakeFiles/tab3_bug_injection.dir/tab3_bug_injection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/mtc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mtc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mtc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mtc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/testgen/CMakeFiles/mtc_testgen.dir/DependInfo.cmake"
  "/root/repo/build/src/mcm/CMakeFiles/mtc_mcm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mtc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
