file(REMOVE_RECURSE
  "CMakeFiles/fig12_codesize.dir/fig12_codesize.cpp.o"
  "CMakeFiles/fig12_codesize.dir/fig12_codesize.cpp.o.d"
  "fig12_codesize"
  "fig12_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
