# Empty dependencies file for fig12_codesize.
# This may be replaced when dependencies are built.
