# Empty dependencies file for fig10_exec_overhead.
# This may be replaced when dependencies are built.
