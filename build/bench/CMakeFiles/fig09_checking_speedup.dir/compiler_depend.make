# Empty compiler generated dependencies file for fig09_checking_speedup.
# This may be replaced when dependencies are built.
