# Empty compiler generated dependencies file for mtc_testgen.
# This may be replaced when dependencies are built.
