file(REMOVE_RECURSE
  "CMakeFiles/mtc_testgen.dir/generator.cc.o"
  "CMakeFiles/mtc_testgen.dir/generator.cc.o.d"
  "CMakeFiles/mtc_testgen.dir/litmus.cc.o"
  "CMakeFiles/mtc_testgen.dir/litmus.cc.o.d"
  "CMakeFiles/mtc_testgen.dir/test_config.cc.o"
  "CMakeFiles/mtc_testgen.dir/test_config.cc.o.d"
  "CMakeFiles/mtc_testgen.dir/test_program.cc.o"
  "CMakeFiles/mtc_testgen.dir/test_program.cc.o.d"
  "libmtc_testgen.a"
  "libmtc_testgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtc_testgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
