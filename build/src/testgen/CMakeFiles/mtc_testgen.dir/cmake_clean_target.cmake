file(REMOVE_RECURSE
  "libmtc_testgen.a"
)
