
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testgen/generator.cc" "src/testgen/CMakeFiles/mtc_testgen.dir/generator.cc.o" "gcc" "src/testgen/CMakeFiles/mtc_testgen.dir/generator.cc.o.d"
  "/root/repo/src/testgen/litmus.cc" "src/testgen/CMakeFiles/mtc_testgen.dir/litmus.cc.o" "gcc" "src/testgen/CMakeFiles/mtc_testgen.dir/litmus.cc.o.d"
  "/root/repo/src/testgen/test_config.cc" "src/testgen/CMakeFiles/mtc_testgen.dir/test_config.cc.o" "gcc" "src/testgen/CMakeFiles/mtc_testgen.dir/test_config.cc.o.d"
  "/root/repo/src/testgen/test_program.cc" "src/testgen/CMakeFiles/mtc_testgen.dir/test_program.cc.o" "gcc" "src/testgen/CMakeFiles/mtc_testgen.dir/test_program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcm/CMakeFiles/mtc_mcm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mtc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
