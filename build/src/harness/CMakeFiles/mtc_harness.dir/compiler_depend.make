# Empty compiler generated dependencies file for mtc_harness.
# This may be replaced when dependencies are built.
