file(REMOVE_RECURSE
  "libmtc_harness.a"
)
