# Empty dependencies file for mtc_harness.
# This may be replaced when dependencies are built.
