file(REMOVE_RECURSE
  "CMakeFiles/mtc_harness.dir/campaign.cc.o"
  "CMakeFiles/mtc_harness.dir/campaign.cc.o.d"
  "CMakeFiles/mtc_harness.dir/validation_flow.cc.o"
  "CMakeFiles/mtc_harness.dir/validation_flow.cc.o.d"
  "libmtc_harness.a"
  "libmtc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
