file(REMOVE_RECURSE
  "CMakeFiles/mtc_core.dir/codesize.cc.o"
  "CMakeFiles/mtc_core.dir/codesize.cc.o.d"
  "CMakeFiles/mtc_core.dir/collective_checker.cc.o"
  "CMakeFiles/mtc_core.dir/collective_checker.cc.o.d"
  "CMakeFiles/mtc_core.dir/conventional_checker.cc.o"
  "CMakeFiles/mtc_core.dir/conventional_checker.cc.o.d"
  "CMakeFiles/mtc_core.dir/instr_plan.cc.o"
  "CMakeFiles/mtc_core.dir/instr_plan.cc.o.d"
  "CMakeFiles/mtc_core.dir/kmedoids.cc.o"
  "CMakeFiles/mtc_core.dir/kmedoids.cc.o.d"
  "CMakeFiles/mtc_core.dir/load_analysis.cc.o"
  "CMakeFiles/mtc_core.dir/load_analysis.cc.o.d"
  "CMakeFiles/mtc_core.dir/perturbation.cc.o"
  "CMakeFiles/mtc_core.dir/perturbation.cc.o.d"
  "CMakeFiles/mtc_core.dir/signature.cc.o"
  "CMakeFiles/mtc_core.dir/signature.cc.o.d"
  "CMakeFiles/mtc_core.dir/signature_codec.cc.o"
  "CMakeFiles/mtc_core.dir/signature_codec.cc.o.d"
  "libmtc_core.a"
  "libmtc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
