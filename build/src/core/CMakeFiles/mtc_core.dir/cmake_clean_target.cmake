file(REMOVE_RECURSE
  "libmtc_core.a"
)
