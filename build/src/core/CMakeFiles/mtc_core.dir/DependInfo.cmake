
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/codesize.cc" "src/core/CMakeFiles/mtc_core.dir/codesize.cc.o" "gcc" "src/core/CMakeFiles/mtc_core.dir/codesize.cc.o.d"
  "/root/repo/src/core/collective_checker.cc" "src/core/CMakeFiles/mtc_core.dir/collective_checker.cc.o" "gcc" "src/core/CMakeFiles/mtc_core.dir/collective_checker.cc.o.d"
  "/root/repo/src/core/conventional_checker.cc" "src/core/CMakeFiles/mtc_core.dir/conventional_checker.cc.o" "gcc" "src/core/CMakeFiles/mtc_core.dir/conventional_checker.cc.o.d"
  "/root/repo/src/core/instr_plan.cc" "src/core/CMakeFiles/mtc_core.dir/instr_plan.cc.o" "gcc" "src/core/CMakeFiles/mtc_core.dir/instr_plan.cc.o.d"
  "/root/repo/src/core/kmedoids.cc" "src/core/CMakeFiles/mtc_core.dir/kmedoids.cc.o" "gcc" "src/core/CMakeFiles/mtc_core.dir/kmedoids.cc.o.d"
  "/root/repo/src/core/load_analysis.cc" "src/core/CMakeFiles/mtc_core.dir/load_analysis.cc.o" "gcc" "src/core/CMakeFiles/mtc_core.dir/load_analysis.cc.o.d"
  "/root/repo/src/core/perturbation.cc" "src/core/CMakeFiles/mtc_core.dir/perturbation.cc.o" "gcc" "src/core/CMakeFiles/mtc_core.dir/perturbation.cc.o.d"
  "/root/repo/src/core/signature.cc" "src/core/CMakeFiles/mtc_core.dir/signature.cc.o" "gcc" "src/core/CMakeFiles/mtc_core.dir/signature.cc.o.d"
  "/root/repo/src/core/signature_codec.cc" "src/core/CMakeFiles/mtc_core.dir/signature_codec.cc.o" "gcc" "src/core/CMakeFiles/mtc_core.dir/signature_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mtc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/testgen/CMakeFiles/mtc_testgen.dir/DependInfo.cmake"
  "/root/repo/build/src/mcm/CMakeFiles/mtc_mcm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mtc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
