# Empty dependencies file for mtc_core.
# This may be replaced when dependencies are built.
