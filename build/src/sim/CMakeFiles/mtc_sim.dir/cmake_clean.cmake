file(REMOVE_RECURSE
  "CMakeFiles/mtc_sim.dir/coherent_executor.cc.o"
  "CMakeFiles/mtc_sim.dir/coherent_executor.cc.o.d"
  "CMakeFiles/mtc_sim.dir/executor.cc.o"
  "CMakeFiles/mtc_sim.dir/executor.cc.o.d"
  "libmtc_sim.a"
  "libmtc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
