file(REMOVE_RECURSE
  "libmtc_sim.a"
)
