file(REMOVE_RECURSE
  "libmtc_mcm.a"
)
