# Empty dependencies file for mtc_mcm.
# This may be replaced when dependencies are built.
