file(REMOVE_RECURSE
  "CMakeFiles/mtc_mcm.dir/isa.cc.o"
  "CMakeFiles/mtc_mcm.dir/isa.cc.o.d"
  "CMakeFiles/mtc_mcm.dir/memory_model.cc.o"
  "CMakeFiles/mtc_mcm.dir/memory_model.cc.o.d"
  "libmtc_mcm.a"
  "libmtc_mcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtc_mcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
