file(REMOVE_RECURSE
  "CMakeFiles/mtc_support.dir/log.cc.o"
  "CMakeFiles/mtc_support.dir/log.cc.o.d"
  "CMakeFiles/mtc_support.dir/rng.cc.o"
  "CMakeFiles/mtc_support.dir/rng.cc.o.d"
  "CMakeFiles/mtc_support.dir/stats.cc.o"
  "CMakeFiles/mtc_support.dir/stats.cc.o.d"
  "CMakeFiles/mtc_support.dir/table.cc.o"
  "CMakeFiles/mtc_support.dir/table.cc.o.d"
  "libmtc_support.a"
  "libmtc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
