file(REMOVE_RECURSE
  "libmtc_support.a"
)
