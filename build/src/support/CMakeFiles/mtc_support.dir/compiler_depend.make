# Empty compiler generated dependencies file for mtc_support.
# This may be replaced when dependencies are built.
