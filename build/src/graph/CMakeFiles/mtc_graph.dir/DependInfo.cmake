
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/constraint_graph.cc" "src/graph/CMakeFiles/mtc_graph.dir/constraint_graph.cc.o" "gcc" "src/graph/CMakeFiles/mtc_graph.dir/constraint_graph.cc.o.d"
  "/root/repo/src/graph/cycle_report.cc" "src/graph/CMakeFiles/mtc_graph.dir/cycle_report.cc.o" "gcc" "src/graph/CMakeFiles/mtc_graph.dir/cycle_report.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/graph/CMakeFiles/mtc_graph.dir/graph_builder.cc.o" "gcc" "src/graph/CMakeFiles/mtc_graph.dir/graph_builder.cc.o.d"
  "/root/repo/src/graph/po_edges.cc" "src/graph/CMakeFiles/mtc_graph.dir/po_edges.cc.o" "gcc" "src/graph/CMakeFiles/mtc_graph.dir/po_edges.cc.o.d"
  "/root/repo/src/graph/topo_sort.cc" "src/graph/CMakeFiles/mtc_graph.dir/topo_sort.cc.o" "gcc" "src/graph/CMakeFiles/mtc_graph.dir/topo_sort.cc.o.d"
  "/root/repo/src/graph/ws_inference.cc" "src/graph/CMakeFiles/mtc_graph.dir/ws_inference.cc.o" "gcc" "src/graph/CMakeFiles/mtc_graph.dir/ws_inference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testgen/CMakeFiles/mtc_testgen.dir/DependInfo.cmake"
  "/root/repo/build/src/mcm/CMakeFiles/mtc_mcm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mtc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
