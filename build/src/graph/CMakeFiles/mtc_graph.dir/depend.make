# Empty dependencies file for mtc_graph.
# This may be replaced when dependencies are built.
