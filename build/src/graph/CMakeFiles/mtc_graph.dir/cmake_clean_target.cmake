file(REMOVE_RECURSE
  "libmtc_graph.a"
)
