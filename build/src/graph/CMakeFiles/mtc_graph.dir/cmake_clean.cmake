file(REMOVE_RECURSE
  "CMakeFiles/mtc_graph.dir/constraint_graph.cc.o"
  "CMakeFiles/mtc_graph.dir/constraint_graph.cc.o.d"
  "CMakeFiles/mtc_graph.dir/cycle_report.cc.o"
  "CMakeFiles/mtc_graph.dir/cycle_report.cc.o.d"
  "CMakeFiles/mtc_graph.dir/graph_builder.cc.o"
  "CMakeFiles/mtc_graph.dir/graph_builder.cc.o.d"
  "CMakeFiles/mtc_graph.dir/po_edges.cc.o"
  "CMakeFiles/mtc_graph.dir/po_edges.cc.o.d"
  "CMakeFiles/mtc_graph.dir/topo_sort.cc.o"
  "CMakeFiles/mtc_graph.dir/topo_sort.cc.o.d"
  "CMakeFiles/mtc_graph.dir/ws_inference.cc.o"
  "CMakeFiles/mtc_graph.dir/ws_inference.cc.o.d"
  "libmtc_graph.a"
  "libmtc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
