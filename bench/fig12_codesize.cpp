/**
 * @file
 * Figure 12: code-size comparison — instrumented vs original test
 * routine, per configuration, using per-ISA instruction encodings.
 * The paper reports a 3.7x average ratio (1.95x to 8.16x) and notes
 * every instrumented test still fits the 32 kB L1 instruction caches
 * when divided across threads.
 */

#include <iostream>

#include "core/codesize.h"
#include "core/instr_plan.h"
#include "core/load_analysis.h"
#include "harness/campaign.h"
#include "support/rng.h"
#include "support/table.h"
#include "testgen/generator.h"
#include "testgen/test_config.h"

using namespace mtc;

int
main()
{
    CampaignConfig campaign = CampaignConfig::fromEnv();

    std::cout << "Figure 12: code size, original vs instrumented\n"
              << "(tests/config=" << campaign.testsPerConfig << ")\n\n";

    TablePrinter table({"config", "original (kB)", "instrumented (kB)",
                        "ratio", "fits 32kB L1I/thread"});

    double ratio_sum = 0.0;
    unsigned rows = 0;
    for (const TestConfig &cfg : figure8Configs()) {
        Rng seeder(campaign.seed ^ cfg.numThreads * 131 ^
                   cfg.opsPerThread * 17 ^ cfg.numLocations);
        double orig = 0.0, instr = 0.0;
        for (unsigned t = 0; t < campaign.testsPerConfig; ++t) {
            const TestProgram program = generateTest(cfg, seeder());
            LoadValueAnalysis analysis(program);
            InstrumentationPlan plan(program, analysis);
            const CodeSizeReport report =
                codeSize(program, analysis, plan);
            orig += report.originalBytes;
            instr += report.instrumentedBytes;
        }
        const double n = campaign.testsPerConfig;
        orig /= n;
        instr /= n;
        const double ratio = orig ? instr / orig : 0.0;
        ratio_sum += ratio;
        ++rows;
        const double per_thread_kb = instr / cfg.numThreads / 1024.0;
        table.addRow({cfg.name(), TablePrinter::fmt(orig / 1024.0, 1),
                      TablePrinter::fmt(instr / 1024.0, 1),
                      TablePrinter::fmt(ratio, 2),
                      per_thread_kb <= 32.0 ? "yes" : "NO"});
    }

    table.print(std::cout);
    std::cout << "\naverage ratio: "
              << TablePrinter::fmt(ratio_sum / rows, 2)
              << "x (paper: 3.7x average, max 8.16x)\n";

    writeFile("fig12_codesize.csv", table.toCsv());
    std::cout << "(csv written to fig12_codesize.csv)\n";
    return 0;
}
