/**
 * @file
 * Figure 11: intrusiveness of verification — memory accesses unrelated
 * to the test execution (signature-word stores), normalized against
 * the register-flushing baseline that stores every loaded value.
 * The paper reports 7% on average (3.9% to 11.5%), with the average
 * execution-signature size annotated inside each bar.
 *
 * These metrics are purely static per test (plan layout), so this
 * bench needs no platform execution; tests per configuration is the
 * only scale knob (MTC_TESTS, paper: 10).
 */

#include <iostream>

#include "core/codesize.h"
#include "core/instr_plan.h"
#include "core/load_analysis.h"
#include "harness/campaign.h"
#include "support/rng.h"
#include "support/table.h"
#include "testgen/generator.h"
#include "testgen/test_config.h"

using namespace mtc;

int
main()
{
    CampaignConfig campaign = CampaignConfig::fromEnv();

    std::cout << "Figure 11: memory accesses unrelated to the test\n"
              << "(tests/config=" << campaign.testsPerConfig
              << "; register-flushing baseline = 100%)\n\n";

    TablePrinter table({"config", "unrelated accesses", "signature (B)",
                        "loads", "sig words"});

    double sum = 0.0;
    unsigned rows = 0;
    for (const TestConfig &cfg : figure8Configs()) {
        Rng seeder(campaign.seed ^ cfg.numThreads * 131 ^
                   cfg.opsPerThread * 17 ^ cfg.numLocations);
        double unrelated = 0.0, sig_bytes = 0.0, loads = 0.0, words = 0.0;
        for (unsigned t = 0; t < campaign.testsPerConfig; ++t) {
            const TestProgram program = generateTest(cfg, seeder());
            LoadValueAnalysis analysis(program);
            InstrumentationPlan plan(program, analysis);
            const IntrusivenessReport report =
                intrusiveness(program, plan);
            unrelated += report.normalizedUnrelated();
            sig_bytes += report.signatureBytes;
            loads += report.testLoads;
            words += report.signatureWords;
        }
        const double n = campaign.testsPerConfig;
        sum += unrelated / n;
        ++rows;
        table.addRow({cfg.name(), TablePrinter::pct(unrelated / n),
                      TablePrinter::fmt(sig_bytes / n, 1),
                      TablePrinter::fmt(loads / n, 1),
                      TablePrinter::fmt(words / n, 1)});
    }

    table.print(std::cout);
    std::cout << "\naverage unrelated accesses: "
              << TablePrinter::pct(sum / rows)
              << " (paper: 7% average)\n";

    writeFile("fig11_intrusiveness.csv", table.toCsv());
    std::cout << "(csv written to fig11_intrusiveness.csv)\n";
    return 0;
}
