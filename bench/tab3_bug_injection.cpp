/**
 * @file
 * Table 3: bug-injection case studies (paper Section 7).
 *
 * Three bugs modeled after real, since-fixed gem5 defects are injected
 * into TWO platform models and hunted with the MTraceCheck flow:
 *
 *  - the timed latency-model platform (`OperationalExecutor`), and
 *  - the message-level MESI directory platform (`CoherentExecutor`),
 *    the closer stand-in for the paper's gem5 runs: there, bugs 1/2
 *    arise from genuine protocol transients (a stale speculative load
 *    surviving an in-flight invalidation) and bug 3 from a dropped
 *    forward in the PUTX/GETX writeback race.
 *
 * Bugs: (1) ld->ld violation in the shared->modified upgrade window
 * (Peekaboo); (2) LSQ failing to squash loads on invalidation; (3)
 * PUTX/GETX race deadlocking the platform (the paper reports gem5
 * crashing on all tests). Test configurations mirror Table 3,
 * including the false-sharing layouts and, for bug 3, a deliberately
 * tiny L1 to intensify evictions. A bug-free control run checks for
 * false positives. Scale with MTC_BUG_TESTS / MTC_ITERATIONS
 * (paper: 101 tests x 1,024 iterations).
 */

#include <cstdlib>
#include <iostream>

#include "harness/campaign.h"
#include "harness/validation_flow.h"
#include "sim/coherent_executor.h"
#include "sim/executor.h"
#include "support/table.h"
#include "testgen/generator.h"

using namespace mtc;

namespace
{

struct BugCase
{
    const char *label;
    const char *config;
    BugKind bug;
    double timedProbability;    ///< timed model fires per trigger
    double protocolProbability; ///< protocol model fires per trigger
    std::uint32_t cacheLines;   ///< 0 = unbounded
};

struct CaseResult
{
    unsigned testsFlagged = 0;
    std::uint64_t badSignatures = 0;
    std::uint64_t assertions = 0;
    unsigned crashes = 0;
    std::string witness;
};

CaseResult
runCase(const BugCase &bug_case, bool protocol_platform, unsigned tests,
        std::uint64_t iterations, std::uint64_t seed)
{
    const TestConfig cfg = parseConfigName(bug_case.config);

    FlowConfig flow_cfg;
    flow_cfg.iterations = iterations;
    flow_cfg.runConventional = false;
    if (protocol_platform) {
        CoherentConfig coh = gem5LikeConfig();
        coh.bug = bug_case.bug;
        coh.bugProbability = bug_case.protocolProbability;
        coh.cacheLines = bug_case.cacheLines;
        flow_cfg.coherent = coh;
    } else {
        flow_cfg.exec = bareMetalConfig(cfg.isa);
        flow_cfg.exec.bug = bug_case.bug;
        flow_cfg.exec.bugProbability = bug_case.timedProbability;
        flow_cfg.exec.timing.cacheLines = bug_case.cacheLines;
    }

    CaseResult result;
    Rng seeder(seed);
    for (unsigned t = 0; t < tests; ++t) {
        const TestProgram program = generateTest(cfg, seeder());
        flow_cfg.seed = seeder();
        ValidationFlow flow(flow_cfg);
        const FlowResult r = flow.runTest(program);
        if (r.anyViolation())
            ++result.testsFlagged;
        result.badSignatures += r.violatingSignatures;
        result.assertions += r.assertionFailures;
        result.crashes += r.platformCrashes ? 1 : 0;
        if (result.witness.empty() && !r.violationWitness.empty())
            result.witness = r.violationWitness;
    }
    return result;
}

} // anonymous namespace

int
main()
{
    unsigned tests = 16;
    std::uint64_t iterations = 192;
    try {
        if (const char *env = std::getenv("MTC_BUG_TESTS"))
            tests = static_cast<unsigned>(
                parseEnvCount("MTC_BUG_TESTS", env));
        if (const char *env = std::getenv("MTC_ITERATIONS"))
            iterations = parseEnvCount("MTC_ITERATIONS", env);
    } catch (const Error &err) {
        std::cerr << "tab3_bug_injection: " << err.what() << "\n";
        return 1;
    }

    std::cout << "Table 3: bug-injection case studies\n(" << tests
              << " tests x " << iterations
              << " iterations per bug per platform; paper: 101 x "
                 "1024)\n\n";

    const BugCase cases[] = {
        {"bug 1 (ld->ld, protocol)", "x86-4-50-8 (4 words/line)",
         BugKind::StaleLoadOnUpgrade, 0.05, 0.05, 0},
        {"bug 2 (ld->ld, LSQ)", "x86-7-200-32 (16 words/line)",
         BugKind::LsqNoSquash, 0.02, 0.05, 0},
        {"bug 3 (PUTX/GETX race)", "x86-7-200-64 (4 words/line)",
         BugKind::PutxGetxRace, 0.5, 1.0, 8},
        {"control (no bug)", "x86-7-200-32 (16 words/line)",
         BugKind::None, 0.0, 0.0, 0},
    };

    TablePrinter table({"bug", "platform", "configuration",
                        "tests flagged", "bad signatures", "assertions",
                        "crashes"});

    std::string witness;
    for (const BugCase &bug_case : cases) {
        for (bool protocol : {false, true}) {
            const CaseResult r =
                runCase(bug_case, protocol, tests, iterations, 2017);
            table.addRow(
                {bug_case.label, protocol ? "MESI protocol" : "timed",
                 bug_case.config,
                 TablePrinter::fmt(std::uint64_t(r.testsFlagged)) + "/" +
                     std::to_string(tests),
                 TablePrinter::fmt(r.badSignatures),
                 TablePrinter::fmt(r.assertions),
                 TablePrinter::fmt(std::uint64_t(r.crashes))});
            if (witness.empty() && !r.witness.empty())
                witness = r.witness;
        }
    }

    table.print(std::cout);

    if (!witness.empty()) {
        std::cout << "\nExample violation witness (Figure 13 style):\n"
                  << witness;
    }

    writeFile("tab3_bug_injection.csv", table.toCsv());
    std::cout << "\n(csv written to tab3_bug_injection.csv)\n";
    return 0;
}
