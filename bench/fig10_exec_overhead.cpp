/**
 * @file
 * Figure 10: test-execution overhead on the (simulated) ARM bare-metal
 * platform — original test cycles, signature-computation overhead, and
 * signature-sorting overhead. The paper reports signature computation
 * at 22% and sorting at 38% of the original execution time on average,
 * with both components small when few unique interleavings occur
 * (perfect branch prediction) and large under high diversity
 * (ARM-2-200-32's mispredictions).
 */

#include <iostream>

#include "harness/campaign.h"
#include "support/table.h"
#include "testgen/test_config.h"

using namespace mtc;

int
main()
{
    CampaignConfig campaign = CampaignConfig::fromEnv();
    campaign.runConventional = false;

    std::cout << "Figure 10: MTraceCheck execution overhead "
              << "(simulated cycles)\n"
              << "(iterations=" << campaign.iterations
              << ", tests/config=" << campaign.testsPerConfig << ")\n\n";

    TablePrinter table({"config", "signature computation",
                        "signature sorting", "unique interleavings"});

    double comp_sum = 0.0, sort_sum = 0.0;
    unsigned rows = 0;
    for (const TestConfig &cfg : figure10Configs()) {
        const ConfigSummary s = runConfig(cfg, campaign);
        comp_sum += s.avgComputationOverhead;
        sort_sum += s.avgSortingOverhead;
        ++rows;
        table.addRow({cfg.name(),
                      TablePrinter::pct(s.avgComputationOverhead),
                      TablePrinter::pct(s.avgSortingOverhead),
                      TablePrinter::fmt(s.avgUniqueSignatures, 1)});
    }

    table.print(std::cout);
    std::cout << "\naverage: computation "
              << TablePrinter::pct(comp_sum / rows) << ", sorting "
              << TablePrinter::pct(sort_sum / rows)
              << " of original test time (paper: 22% / 38%)\n";

    writeFile("fig10_exec_overhead.csv", table.toCsv());
    std::cout << "(csv written to fig10_exec_overhead.csv)\n";
    return 0;
}
