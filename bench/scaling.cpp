/**
 * @file
 * Parallel-scaling sweep of the validation engine: campaign
 * throughput across worker-thread counts and collective-checker shard
 * sizes, emitted as BENCH_scaling.json so the perf trajectory is
 * tracked from PR to PR.
 *
 * Two sweeps:
 *  - threads: the same campaign run with 1, 2, 4, 8 workers.
 *    Summaries must be bit-identical to the 1-thread baseline (the
 *    sweep hard-checks this and reports `deterministic` per point);
 *    speedup is wall-clock relative to 1 thread.
 *  - shards: the same campaign at a fixed thread count across shard
 *    sizes. Sharding trades one extra complete sort per shard for
 *    shard-level parallelism; the sweep records the checker-work
 *    delta (extra sorts, extra vertices+edges processed) so the
 *    tradeoff stays measured instead of folklore.
 *
 * A third measurement prices the crash-resilience layer: the serial
 * baseline re-run with a write-ahead campaign journal attached
 * (one fsync-batched record per completed test), then resumed from
 * that journal so the replay path is timed too.  Summaries must stay
 * bit-identical in both modes; the JSON records the overhead as a
 * fraction of baseline wall-clock.
 *
 * A companion measurement prices the offline-checking split: the
 * baseline re-run with a trace dump attached (the --dump-trace
 * producer), the dumped trace re-verified standalone by checkTrace
 * (what mtc_check runs), and a 10%-truncated copy recovered through
 * the degraded path. Dump overhead, standalone-check speedup versus
 * the inline run, and recovery time land in the `trace_check` block;
 * the intact check must reproduce the baseline summaries bit-for-bit
 * and the torn check must yield only classified faults.
 *
 * With --sandbox a fourth sweep prices the out-of-process execution
 * sandbox: the same campaign dispatched to pre-forked worker
 * processes over framed pipe IPC at several worker counts. The
 * overhead fraction against the serial in-process baseline and its
 * per-unit amortization (fork is paid once, dispatch per unit) land
 * in the JSON; summaries must stay bit-identical at every count.
 *
 * With --distributed a fifth sweep prices the TCP campaign fabric:
 * the same campaign served by a loopback coordinator to forked
 * mtc_worker-equivalent fleets at several fleet sizes (the same
 * frames as the sandbox, plus handshake, leasing and heartbeats).
 * Summaries must stay bit-identical at every fleet size.
 *
 * Wall-clock speedup is bounded by the machine: the JSON records
 * hardwareConcurrency so a 1-core CI container's speedup of ~1.0 is
 * read as "no cores", not "no scaling".
 *
 * Scale with MTC_SCALING_TESTS / MTC_ITERATIONS; --smoke runs a
 * seconds-scale version of the full sweep (CI keeps the emitter from
 * rotting).
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "harness/campaign.h"
#include "harness/trace_check.h"
#include "support/table.h"
#include "support/timer.h"
#include "testgen/generator.h"

using namespace mtc;

namespace
{

/** Deterministic-summary comparison: every field except wall-clock. */
bool
summariesMatch(const std::vector<ConfigSummary> &a,
               const std::vector<ConfigSummary> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const ConfigSummary &x = a[i], &y = b[i];
        if (x.tests != y.tests ||
            x.avgUniqueSignatures != y.avgUniqueSignatures ||
            x.avgSignatureBytes != y.avgSignatureBytes ||
            x.avgCodeRatio != y.avgCodeRatio ||
            x.collectiveWork != y.collectiveWork ||
            x.conventionalWork != y.conventionalWork ||
            x.collectiveGraphs != y.collectiveGraphs ||
            x.collectiveCompleteSorts != y.collectiveCompleteSorts ||
            x.fracComplete != y.fracComplete ||
            x.fracNoResort != y.fracNoResort ||
            x.fracIncremental != y.fracIncremental ||
            x.avgAffectedFraction != y.avgAffectedFraction ||
            x.avgComputationOverhead != y.avgComputationOverhead ||
            x.avgSortingOverhead != y.avgSortingOverhead ||
            x.violations != y.violations ||
            x.quarantinedSignatures != y.quarantinedSignatures ||
            x.confirmedViolations != y.confirmedViolations ||
            x.failedTests != y.failedTests ||
            x.degraded != y.degraded)
            return false;
    }
    return true;
}

struct SweepPoint
{
    unsigned threads = 1;
    std::size_t shardSize = 0;
    double ms = 0.0;
    double speedup = 1.0;
    std::uint64_t collectiveWork = 0;
    std::uint64_t completeSorts = 0;
    bool deterministic = true;
};

std::uint64_t
totalCollectiveWork(const std::vector<ConfigSummary> &summaries)
{
    std::uint64_t work = 0;
    for (const ConfigSummary &s : summaries)
        work += s.collectiveWork;
    return work;
}

std::uint64_t
totalCompleteSorts(const std::vector<ConfigSummary> &summaries)
{
    std::uint64_t sorts = 0;
    for (const ConfigSummary &s : summaries)
        sorts += s.collectiveCompleteSorts;
    return sorts;
}

std::string
jsonEscapeless(double v)
{
    std::ostringstream out;
    out << v;
    return out.str();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool sandbox = false;
    bool distributed = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--sandbox") {
            sandbox = true;
        } else if (arg == "--distributed") {
            distributed = true;
        } else {
            std::cerr << "scaling: unknown option " << arg
                      << " (only --smoke, --sandbox and "
                         "--distributed)\n";
            return 1;
        }
    }

    unsigned tests = smoke ? 2 : 12;
    std::uint64_t iterations = smoke ? 48 : 512;
    try {
        if (const char *env = std::getenv("MTC_SCALING_TESTS"))
            tests = static_cast<unsigned>(
                parseEnvCount("MTC_SCALING_TESTS", env));
        if (const char *env = std::getenv("MTC_ITERATIONS"))
            iterations = parseEnvCount("MTC_ITERATIONS", env);
    } catch (const Error &err) {
        std::cerr << "scaling: " << err.what() << "\n";
        return 1;
    }

    const std::vector<TestConfig> configs = {
        parseConfigName("x86-4-100-64"),
        parseConfigName("ARM-4-100-64"),
    };

    CampaignConfig base;
    base.iterations = iterations;
    base.testsPerConfig = tests;
    base.runConventional = false;

    const unsigned hw = std::thread::hardware_concurrency();
    std::cout << "Parallel-scaling sweep: " << configs.size()
              << " configs x " << tests << " tests x " << iterations
              << " iterations (hardware threads: " << hw << ")\n\n";

    // --- Baseline (1 worker, unsharded) ------------------------------
    CampaignConfig serial = base;
    serial.threads = 1;
    std::vector<ConfigSummary> baseline_summaries;
    double baseline_ms = 0.0;
    {
        WallTimer timer;
        ScopedTimer scope(timer);
        baseline_summaries = runCampaign(configs, serial);
        baseline_ms = timer.milliseconds();
    }

    std::vector<SweepPoint> points;

    // --- Thread sweep ------------------------------------------------
    const std::vector<unsigned> thread_counts =
        smoke ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 4, 8};
    for (unsigned threads : thread_counts) {
        CampaignConfig cfg = base;
        cfg.threads = threads;
        WallTimer timer;
        timer.start();
        const auto summaries = runCampaign(configs, cfg);
        timer.stop();

        SweepPoint point;
        point.threads = threads;
        point.ms = timer.milliseconds();
        point.speedup = point.ms > 0.0 ? baseline_ms / point.ms : 0.0;
        point.collectiveWork = totalCollectiveWork(summaries);
        point.completeSorts = totalCompleteSorts(summaries);
        point.deterministic =
            summariesMatch(summaries, baseline_summaries);
        points.push_back(point);
    }

    // --- Batch-width sweep (serial) ----------------------------------
    // Methodology: the serial baseline campaign re-run at several
    // lockstep batch widths (FlowConfig::batch). B=1 is scalar
    // stepping; wider batches amortize instruction dispatch and the
    // per-batch OrderTable across lanes. Summaries must stay
    // bit-identical at every width (pre-derived per-iteration RNG
    // streams make the width purely operational); speedup is
    // wall-clock against the B=1 point of this sweep, so the number
    // isolates the lockstep engine from everything else.
    struct BatchPoint
    {
        std::uint32_t batch = 1;
        double ms = 0.0;
        double speedupVsScalar = 1.0;
        bool deterministic = true;
    };
    std::vector<BatchPoint> batch_points;
    {
        const std::vector<std::uint32_t> widths =
            smoke ? std::vector<std::uint32_t>{1, 8}
                  : std::vector<std::uint32_t>{1, 4, 8, 16, 32, 64};
        double scalar_ms = 0.0;
        for (std::uint32_t width : widths) {
            CampaignConfig cfg = serial;
            cfg.batch = width;
            WallTimer timer;
            timer.start();
            const auto summaries = runCampaign(configs, cfg);
            timer.stop();

            BatchPoint point;
            point.batch = width;
            point.ms = timer.milliseconds();
            if (width == 1)
                scalar_ms = point.ms;
            point.speedupVsScalar =
                point.ms > 0.0 && scalar_ms > 0.0
                ? scalar_ms / point.ms
                : 1.0;
            point.deterministic =
                summariesMatch(summaries, baseline_summaries);
            batch_points.push_back(point);
        }
    }

    // --- Shard sweep (at the widest swept thread count) --------------
    const std::vector<std::size_t> shard_sizes =
        smoke ? std::vector<std::size_t>{0, 8}
              : std::vector<std::size_t>{0, 8, 32, 128};
    for (std::size_t shard : shard_sizes) {
        if (shard == 0)
            continue; // the unsharded point is the thread sweep's
        CampaignConfig cfg = base;
        cfg.threads = thread_counts.back();
        cfg.shardSize = shard;
        WallTimer timer;
        timer.start();
        const auto summaries = runCampaign(configs, cfg);
        timer.stop();

        SweepPoint point;
        point.threads = cfg.threads;
        point.shardSize = shard;
        point.ms = timer.milliseconds();
        point.speedup = point.ms > 0.0 ? baseline_ms / point.ms : 0.0;
        point.collectiveWork = totalCollectiveWork(summaries);
        point.completeSorts = totalCompleteSorts(summaries);
        // Sharding legitimately changes checker stats (one extra full
        // sort per shard), so determinism is judged against a serial
        // run at the same shard size, not against the unsharded
        // baseline.
        CampaignConfig check = cfg;
        check.threads = 1;
        point.deterministic =
            summariesMatch(summaries, runCampaign(configs, check));
        points.push_back(point);
    }

    // --- Journal overhead (serial, journaled, then resumed) ----------
    // Methodology: the journal run is the exact serial baseline
    // campaign with --journal attached, so the delta is purely the
    // checkpoint layer (record encode + append + batched fsync).  The
    // resume run replays every test from the same journal, pricing the
    // decode/replay path.  Both must reproduce the baseline summaries
    // bit-for-bit or the resilience layer is broken, not just slow.
    const std::string journal_path =
        (std::filesystem::temp_directory_path() /
         ("mtc_scaling_journal." + std::to_string(::getpid())))
            .string();
    double journal_ms = 0.0, resume_ms = 0.0;
    bool journal_deterministic = true;
    {
        CampaignConfig cfg = serial;
        cfg.journalPath = journal_path;
        WallTimer timer;
        timer.start();
        const auto summaries = runCampaign(configs, cfg);
        timer.stop();
        journal_ms = timer.milliseconds();
        journal_deterministic =
            summariesMatch(summaries, baseline_summaries);

        cfg.resume = true;
        WallTimer resume_timer;
        resume_timer.start();
        const auto replayed = runCampaign(configs, cfg);
        resume_timer.stop();
        resume_ms = resume_timer.milliseconds();
        journal_deterministic =
            journal_deterministic &&
            summariesMatch(replayed, baseline_summaries);
    }
    std::remove(journal_path.c_str());
    const double journal_overhead =
        baseline_ms > 0.0 ? (journal_ms - baseline_ms) / baseline_ms
                          : 0.0;

    // --- Offline trace check (dump, standalone check, recovery) ------
    // Methodology: the serial baseline campaign re-run with a trace
    // dump attached, so the delta prices the producer alone (header +
    // one framed signature-stream record per unit, written from the
    // parent-side slots after the campaign). The standalone check
    // then re-verifies the dumped trace with checkTrace — re-deriving
    // every test from the spec's seeds and re-running the checking
    // stage, but never the platform executions — and must reproduce
    // the baseline summaries bit-for-bit. The recovery point
    // re-checks a copy truncated to 90% of its bytes: the degraded
    // path must land on classified faults over the longest intact
    // prefix (never a throw), and its wall-clock prices recovery.
    const std::string trace_path =
        (std::filesystem::temp_directory_path() /
         ("mtc_scaling_trace." + std::to_string(::getpid())))
            .string();
    const std::string torn_trace_path = trace_path + ".torn";
    double dump_ms = 0.0, check_ms = 0.0, recovery_ms = 0.0;
    std::size_t recovery_verified = 0, recovery_missing = 0;
    std::size_t recovery_faults = 0;
    bool trace_deterministic = true;
    bool recovery_classified = true;
    {
        CampaignConfig cfg = serial;
        cfg.dumpTracePath = trace_path;
        WallTimer timer;
        timer.start();
        const auto summaries = runCampaign(configs, cfg);
        timer.stop();
        dump_ms = timer.milliseconds();
        trace_deterministic =
            summariesMatch(summaries, baseline_summaries);

        TraceCheckOptions check;
        check.tracePath = trace_path;
        WallTimer check_timer;
        check_timer.start();
        const TraceCheckReport report = checkTrace(check);
        check_timer.stop();
        check_ms = check_timer.milliseconds();
        trace_deterministic = trace_deterministic &&
            !report.anyFault() &&
            summariesMatch(report.summaries, baseline_summaries);

        const std::uintmax_t full_bytes =
            std::filesystem::file_size(trace_path);
        std::filesystem::copy_file(
            trace_path, torn_trace_path,
            std::filesystem::copy_options::overwrite_existing);
        std::filesystem::resize_file(torn_trace_path,
                                     full_bytes - full_bytes / 10);
        TraceCheckOptions torn = check;
        torn.tracePath = torn_trace_path;
        WallTimer torn_timer;
        torn_timer.start();
        try {
            const TraceCheckReport degraded = checkTrace(torn);
            recovery_verified = degraded.unitsVerified;
            recovery_missing = degraded.missingUnits;
            recovery_faults = degraded.faults.size();
            recovery_classified = degraded.anyFault();
        } catch (const TraceError &) {
            recovery_classified = false; // degraded mode must degrade
        }
        torn_timer.stop();
        recovery_ms = torn_timer.milliseconds();
    }
    std::remove(trace_path.c_str());
    std::remove(torn_trace_path.c_str());
    const double dump_overhead =
        baseline_ms > 0.0 ? (dump_ms - baseline_ms) / baseline_ms
                          : 0.0;
    const double check_speedup =
        check_ms > 0.0 ? baseline_ms / check_ms : 0.0;

    // --- Sandbox dispatch overhead (--sandbox) -----------------------
    // Methodology: the exact serial baseline campaign re-run with
    // ExecutionMode::Sandboxed — every unit shipped to a pre-forked
    // worker process over framed pipes — at several worker counts.
    // The fleet fork is paid once per campaign, the request/response
    // frames per unit, so the JSON records both the total overhead
    // fraction against the in-process baseline and its per-unit
    // amortization. Summaries must stay bit-identical at every count
    // or the sandbox is broken, not just slow.
    struct SandboxPoint
    {
        unsigned workers = 1;
        double ms = 0.0;
        double overheadFraction = 0.0;
        double dispatchMsPerUnit = 0.0;
        bool deterministic = true;
    };
    std::vector<SandboxPoint> sandbox_points;
    if (sandbox) {
        const std::size_t unit_count = configs.size() * tests;
        const std::vector<unsigned> worker_counts =
            smoke ? std::vector<unsigned>{1, 2}
                  : std::vector<unsigned>{1, 2, 4, 8};
        for (unsigned workers : worker_counts) {
            CampaignConfig cfg = base;
            cfg.mode = ExecutionMode::Sandboxed;
            cfg.threads = workers;
            WallTimer timer;
            timer.start();
            const auto summaries = runCampaign(configs, cfg);
            timer.stop();

            SandboxPoint point;
            point.workers = workers;
            point.ms = timer.milliseconds();
            point.overheadFraction = baseline_ms > 0.0
                ? (point.ms - baseline_ms) / baseline_ms
                : 0.0;
            point.dispatchMsPerUnit = unit_count
                ? (point.ms - baseline_ms) /
                    static_cast<double>(unit_count)
                : 0.0;
            point.deterministic =
                summariesMatch(summaries, baseline_summaries);
            sandbox_points.push_back(point);
        }
    }

    // --- Distributed fabric overhead (--distributed) -----------------
    // Methodology: the exact serial baseline campaign re-run with
    // ExecutionMode::Distributed — a loopback TCP coordinator leasing
    // units to a forked worker fleet — at several fleet sizes. Same
    // framed codec as the sandbox pipes, plus the fabric's own costs:
    // the handshake (spec shipped down per worker), lease round trips
    // and heartbeats. Summaries must stay bit-identical at every
    // fleet size or the fabric is broken, not just slow.
    struct DistPoint
    {
        unsigned workers = 1;
        double ms = 0.0;
        double overheadFraction = 0.0;
        double dispatchMsPerUnit = 0.0;
        bool deterministic = true;
    };
    std::vector<DistPoint> dist_points;
    if (distributed) {
        const std::size_t unit_count = configs.size() * tests;
        const std::vector<unsigned> fleet_sizes =
            smoke ? std::vector<unsigned>{1, 2}
                  : std::vector<unsigned>{1, 2, 4, 8};
        for (unsigned workers : fleet_sizes) {
            CampaignConfig cfg = base;
            cfg.mode = ExecutionMode::Distributed;
            cfg.distWorkers = workers;
            WallTimer timer;
            timer.start();
            const auto summaries = runCampaign(configs, cfg);
            timer.stop();

            DistPoint point;
            point.workers = workers;
            point.ms = timer.milliseconds();
            point.overheadFraction = baseline_ms > 0.0
                ? (point.ms - baseline_ms) / baseline_ms
                : 0.0;
            point.dispatchMsPerUnit = unit_count
                ? (point.ms - baseline_ms) /
                    static_cast<double>(unit_count)
                : 0.0;
            point.deterministic =
                summariesMatch(summaries, baseline_summaries);
            dist_points.push_back(point);
        }
    }

    // --- Authenticated-fabric overhead (--distributed) ---------------
    // Methodology: the largest keyless fleet point re-run with a
    // pre-shared fabric key, so every session pays the HMAC-SHA256
    // challenge handshake once and every post-handshake frame carries
    // a 16-byte MAC plus an 8-byte sequence number. The overhead
    // fraction is measured against the keyless run of the same fleet
    // size — it prices authentication alone, not distribution.
    struct AuthPoint
    {
        double ms = 0.0;
        double overheadFraction = 0.0; ///< vs keyless, same fleet
        bool deterministic = true;
    };
    bool auth_measured = false;
    AuthPoint auth_point;
    // --- Chaos inflation (--distributed) -----------------------------
    // Methodology: the same fleet re-run under seeded symmetric
    // network faults (drop = dup = rate, corrupt = rate/2, both
    // directions). Faults cost reconnects, lease revocations and
    // re-sent frames, so completion time inflates with the rate —
    // but the summary must stay bit-identical to the serial baseline
    // at every rate, which is the property being priced.
    struct ChaosPoint
    {
        double rate = 0.0;
        double ms = 0.0;
        double inflationFraction = 0.0; ///< vs fault-free, same fleet
        bool deterministic = true;
    };
    std::vector<ChaosPoint> chaos_points;
    if (distributed && !dist_points.empty()) {
        const double plain_ms = dist_points.back().ms;
        const unsigned fleet = dist_points.back().workers;

        const std::string key_path = "BENCH_scaling.fabric.key";
        writeFile(key_path, std::string(32, 'b') + "\n");
        {
            CampaignConfig cfg = base;
            cfg.mode = ExecutionMode::Distributed;
            cfg.distWorkers = fleet;
            cfg.distKeyFile = key_path;
            WallTimer timer;
            timer.start();
            const auto summaries = runCampaign(configs, cfg);
            timer.stop();
            auth_point.ms = timer.milliseconds();
            auth_point.overheadFraction = plain_ms > 0.0
                ? (auth_point.ms - plain_ms) / plain_ms
                : 0.0;
            auth_point.deterministic =
                summariesMatch(summaries, baseline_summaries);
            auth_measured = true;
        }
        std::remove(key_path.c_str());

        const std::vector<double> fault_rates =
            smoke ? std::vector<double>{0.01}
                  : std::vector<double>{0.01, 0.03, 0.05};
        for (const double rate : fault_rates) {
            CampaignConfig cfg = base;
            cfg.mode = ExecutionMode::Distributed;
            cfg.distWorkers = fleet;
            cfg.distNetFault.send.drop = rate;
            cfg.distNetFault.recv.drop = rate;
            cfg.distNetFault.send.duplicate = rate;
            cfg.distNetFault.recv.duplicate = rate;
            cfg.distNetFault.send.corrupt = rate / 2;
            cfg.distNetFault.recv.corrupt = rate / 2;
            cfg.distNetFault.seed = 29;
            WallTimer timer;
            timer.start();
            const auto summaries = runCampaign(configs, cfg);
            timer.stop();

            ChaosPoint point;
            point.rate = rate;
            point.ms = timer.milliseconds();
            point.inflationFraction = plain_ms > 0.0
                ? (point.ms - plain_ms) / plain_ms
                : 0.0;
            point.deterministic =
                summariesMatch(summaries, baseline_summaries);
            chaos_points.push_back(point);
        }
    }

    // --- Report ------------------------------------------------------
    TablePrinter table({"threads", "shard", "ms", "speedup",
                        "collective work", "complete sorts",
                        "deterministic"});
    for (const SweepPoint &p : points) {
        table.addRow({TablePrinter::fmt(std::uint64_t(p.threads)),
                      p.shardSize
                          ? TablePrinter::fmt(std::uint64_t(p.shardSize))
                          : std::string("-"),
                      TablePrinter::fmt(p.ms, 1),
                      TablePrinter::fmt(p.speedup, 2),
                      TablePrinter::fmt(p.collectiveWork),
                      TablePrinter::fmt(p.completeSorts),
                      p.deterministic ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << "\nShard reading guide: each shard pays one extra "
                 "complete sort (the paper's\nparallelization tax); "
                 "`collective work` rises accordingly as shards "
                 "shrink.\nWall-clock speedup is bounded by hardware "
                 "threads ("
              << hw << " here).\n";

    std::cout << "\nLockstep batch-width sweep (serial, speedup vs "
                 "B=1):\n";
    TablePrinter bt({"batch", "ms", "speedup", "deterministic"});
    for (const BatchPoint &p : batch_points) {
        bt.addRow({TablePrinter::fmt(std::uint64_t(p.batch)),
                   TablePrinter::fmt(p.ms, 1),
                   TablePrinter::fmt(p.speedupVsScalar, 2),
                   p.deterministic ? "yes" : "NO"});
    }
    bt.print(std::cout);

    std::cout << "\nJournal overhead (serial): baseline "
              << TablePrinter::fmt(baseline_ms, 1) << " ms, journaled "
              << TablePrinter::fmt(journal_ms, 1) << " ms ("
              << TablePrinter::fmt(100.0 * journal_overhead, 1)
              << "% overhead), full resume replay "
              << TablePrinter::fmt(resume_ms, 1) << " ms, summaries "
              << (journal_deterministic ? "bit-identical"
                                        : "DIVERGED")
              << "\n";

    std::cout << "\nOffline trace check (serial): dump "
              << TablePrinter::fmt(dump_ms, 1) << " ms ("
              << TablePrinter::fmt(100.0 * dump_overhead, 1)
              << "% overhead), standalone check "
              << TablePrinter::fmt(check_ms, 1) << " ms ("
              << TablePrinter::fmt(check_speedup, 2)
              << "x vs inline run), 10%-torn recovery "
              << TablePrinter::fmt(recovery_ms, 1) << " ms ("
              << recovery_verified << " verified, " << recovery_missing
              << " missing, " << recovery_faults
              << " classified faults), summaries "
              << (trace_deterministic ? "bit-identical" : "DIVERGED")
              << "\n";

    if (!sandbox_points.empty()) {
        std::cout << "\nSandbox dispatch overhead (vs serial "
                     "in-process baseline):\n";
        TablePrinter sbx({"workers", "ms", "overhead", "ms/unit",
                          "deterministic"});
        for (const SandboxPoint &p : sandbox_points) {
            sbx.addRow({TablePrinter::fmt(std::uint64_t(p.workers)),
                        TablePrinter::fmt(p.ms, 1),
                        TablePrinter::fmt(100.0 * p.overheadFraction,
                                          1) + "%",
                        TablePrinter::fmt(p.dispatchMsPerUnit, 3),
                        p.deterministic ? "yes" : "NO"});
        }
        sbx.print(std::cout);
    }

    if (!dist_points.empty()) {
        std::cout << "\nDistributed fabric overhead (vs serial "
                     "in-process baseline):\n";
        TablePrinter dst({"workers", "ms", "overhead", "ms/unit",
                          "deterministic"});
        for (const DistPoint &p : dist_points) {
            dst.addRow({TablePrinter::fmt(std::uint64_t(p.workers)),
                        TablePrinter::fmt(p.ms, 1),
                        TablePrinter::fmt(100.0 * p.overheadFraction,
                                          1) + "%",
                        TablePrinter::fmt(p.dispatchMsPerUnit, 3),
                        p.deterministic ? "yes" : "NO"});
        }
        dst.print(std::cout);
    }

    if (auth_measured) {
        std::cout << "\nAuthenticated fabric (HMAC handshake + "
                     "per-frame MAC, vs keyless fleet): "
                  << TablePrinter::fmt(auth_point.ms, 1) << " ms ("
                  << TablePrinter::fmt(
                         100.0 * auth_point.overheadFraction, 1)
                  << "% overhead), summaries "
                  << (auth_point.deterministic ? "bit-identical"
                                               : "DIVERGED")
                  << "\n";
    }
    if (!chaos_points.empty()) {
        std::cout << "\nChaos inflation (seeded network faults, vs "
                     "fault-free fleet):\n";
        TablePrinter cht({"fault rate", "ms", "inflation",
                          "deterministic"});
        for (const ChaosPoint &p : chaos_points) {
            cht.addRow({TablePrinter::fmt(p.rate, 3),
                        TablePrinter::fmt(p.ms, 1),
                        TablePrinter::fmt(
                            100.0 * p.inflationFraction, 1) + "%",
                        p.deterministic ? "yes" : "NO"});
        }
        cht.print(std::cout);
    }

    bool all_deterministic = journal_deterministic &&
        trace_deterministic && recovery_classified;
    for (const SweepPoint &p : points)
        all_deterministic = all_deterministic && p.deterministic;
    for (const BatchPoint &p : batch_points)
        all_deterministic = all_deterministic && p.deterministic;
    for (const SandboxPoint &p : sandbox_points)
        all_deterministic = all_deterministic && p.deterministic;
    for (const DistPoint &p : dist_points)
        all_deterministic = all_deterministic && p.deterministic;
    if (auth_measured)
        all_deterministic =
            all_deterministic && auth_point.deterministic;
    for (const ChaosPoint &p : chaos_points)
        all_deterministic = all_deterministic && p.deterministic;
    if (!all_deterministic)
        std::cerr << "scaling: DETERMINISM VIOLATION — parallel "
                     "summaries diverged from serial baseline\n";

    // --- JSON emission ----------------------------------------------
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"scaling\",\n"
         << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
         << "  \"hardwareConcurrency\": " << hw << ",\n"
         << "  \"configs\": [";
    for (std::size_t i = 0; i < configs.size(); ++i)
        json << (i ? ", " : "") << '"' << configs[i].name() << '"';
    json << "],\n"
         << "  \"testsPerConfig\": " << tests << ",\n"
         << "  \"iterations\": " << iterations << ",\n"
         << "  \"baselineMs\": " << jsonEscapeless(baseline_ms) << ",\n"
         << "  \"deterministic\": "
         << (all_deterministic ? "true" : "false") << ",\n"
         << "  \"batchSweep\": {\n"
         << "    \"methodology\": \"serial baseline campaign re-run "
            "at several lockstep batch widths (FlowConfig::batch; "
            "B=1 is scalar stepping); speedupVsScalar is wall-clock "
            "against this sweep's own B=1 point so it isolates the "
            "lockstep engine; summaries must stay bit-identical at "
            "every width\",\n"
         << "    \"sweep\": [\n";
    for (std::size_t i = 0; i < batch_points.size(); ++i) {
        const BatchPoint &p = batch_points[i];
        json << "      {\"batch\": " << p.batch
             << ", \"ms\": " << jsonEscapeless(p.ms)
             << ", \"speedupVsScalar\": "
             << jsonEscapeless(p.speedupVsScalar)
             << ", \"deterministic\": "
             << (p.deterministic ? "true" : "false") << "}"
             << (i + 1 < batch_points.size() ? "," : "") << "\n";
    }
    json << "    ]\n  },\n"
         << "  \"journal\": {\n"
         << "    \"methodology\": \"serial baseline campaign re-run "
            "with a write-ahead journal (one record per completed "
            "test, fsync batched), then fully resumed from that "
            "journal; overhead is (journaledMs - baselineMs) / "
            "baselineMs and both runs must reproduce the baseline "
            "summaries bit-for-bit\",\n"
         << "    \"journaledMs\": " << jsonEscapeless(journal_ms)
         << ",\n"
         << "    \"resumeReplayMs\": " << jsonEscapeless(resume_ms)
         << ",\n"
         << "    \"overheadFraction\": "
         << jsonEscapeless(journal_overhead) << ",\n"
         << "    \"deterministic\": "
         << (journal_deterministic ? "true" : "false") << "\n"
         << "  },\n"
         << "  \"trace_check\": {\n"
         << "    \"methodology\": \"serial baseline campaign re-run "
            "with a trace dump attached (header fingerprinting the "
            "campaign spec + one framed signature-stream record per "
            "unit, written after the campaign); dumpOverheadFraction "
            "is (dumpMs - baselineMs) / baselineMs; the standalone "
            "check re-verifies the trace with checkTrace — re-deriving "
            "every test from the spec's seeds, skipping platform "
            "execution — and must reproduce the baseline summaries "
            "bit-for-bit; the recovery point re-checks a copy "
            "truncated to 90% of its bytes, which must yield only "
            "classified faults over the longest intact prefix\",\n"
         << "    \"dumpMs\": " << jsonEscapeless(dump_ms) << ",\n"
         << "    \"dumpOverheadFraction\": "
         << jsonEscapeless(dump_overhead) << ",\n"
         << "    \"checkMs\": " << jsonEscapeless(check_ms) << ",\n"
         << "    \"checkSpeedupVsInline\": "
         << jsonEscapeless(check_speedup) << ",\n"
         << "    \"recoveryMs\": " << jsonEscapeless(recovery_ms)
         << ",\n"
         << "    \"recoveryVerifiedUnits\": " << recovery_verified
         << ",\n"
         << "    \"recoveryMissingUnits\": " << recovery_missing
         << ",\n"
         << "    \"recoveryClassifiedFaults\": " << recovery_faults
         << ",\n"
         << "    \"deterministic\": "
         << (trace_deterministic && recovery_classified ? "true"
                                                        : "false")
         << "\n  },\n";
    if (!sandbox_points.empty()) {
        json << "  \"sandbox\": {\n"
             << "    \"methodology\": \"serial baseline campaign "
                "re-run with ExecutionMode::Sandboxed: every unit "
                "dispatched to a pre-forked worker process over "
                "length+FNV-1a framed pipes; overheadFraction is "
                "(sandboxMs - baselineMs) / baselineMs against the "
                "in-process serial baseline, dispatchMsPerUnit "
                "amortizes the same delta over all units (fleet fork "
                "paid once, one request/response frame pair per "
                "unit); summaries must stay bit-identical at every "
                "worker count\",\n"
             << "    \"sweep\": [\n";
        for (std::size_t i = 0; i < sandbox_points.size(); ++i) {
            const SandboxPoint &p = sandbox_points[i];
            json << "      {\"workers\": " << p.workers
                 << ", \"ms\": " << jsonEscapeless(p.ms)
                 << ", \"overheadFraction\": "
                 << jsonEscapeless(p.overheadFraction)
                 << ", \"dispatchMsPerUnit\": "
                 << jsonEscapeless(p.dispatchMsPerUnit)
                 << ", \"deterministic\": "
                 << (p.deterministic ? "true" : "false") << "}"
                 << (i + 1 < sandbox_points.size() ? "," : "") << "\n";
        }
        json << "    ]\n  },\n";
    }
    if (!dist_points.empty()) {
        json << "  \"distributed\": {\n"
             << "    \"methodology\": \"serial baseline campaign "
                "re-run with ExecutionMode::Distributed: a loopback "
                "TCP coordinator leasing units to a forked worker "
                "fleet over the same length+FNV-1a framed codec as "
                "the sandbox pipes, plus the fabric's handshake "
                "(campaign spec shipped per worker), lease round "
                "trips and heartbeats; overheadFraction is "
                "(distributedMs - baselineMs) / baselineMs against "
                "the in-process serial baseline, dispatchMsPerUnit "
                "amortizes the same delta over all units; summaries "
                "must stay bit-identical at every fleet size\",\n"
             << "    \"sweep\": [\n";
        for (std::size_t i = 0; i < dist_points.size(); ++i) {
            const DistPoint &p = dist_points[i];
            json << "      {\"workers\": " << p.workers
                 << ", \"ms\": " << jsonEscapeless(p.ms)
                 << ", \"overheadFraction\": "
                 << jsonEscapeless(p.overheadFraction)
                 << ", \"dispatchMsPerUnit\": "
                 << jsonEscapeless(p.dispatchMsPerUnit)
                 << ", \"deterministic\": "
                 << (p.deterministic ? "true" : "false") << "}"
                 << (i + 1 < dist_points.size() ? "," : "") << "\n";
        }
        json << "    ]";
        if (auth_measured) {
            json << ",\n    \"auth\": {\n"
                 << "      \"methodology\": \"largest keyless fleet "
                    "point re-run with a pre-shared fabric key: one "
                    "HMAC-SHA256 challenge/response handshake per "
                    "session plus a 16-byte MAC and 8-byte sequence "
                    "number on every post-handshake frame; "
                    "overheadFraction is (authMs - keylessMs) / "
                    "keylessMs against the keyless run of the same "
                    "fleet size, pricing authentication alone; "
                    "summaries must stay bit-identical\",\n"
                 << "      \"ms\": " << jsonEscapeless(auth_point.ms)
                 << ",\n"
                 << "      \"overheadFraction\": "
                 << jsonEscapeless(auth_point.overheadFraction) << ",\n"
                 << "      \"deterministic\": "
                 << (auth_point.deterministic ? "true" : "false")
                 << "\n    }";
        }
        if (!chaos_points.empty()) {
            json << ",\n    \"chaos\": {\n"
                 << "      \"methodology\": \"same fleet re-run under "
                    "seeded symmetric network faults (drop = dup = "
                    "rate, corrupt = rate/2, both directions, fixed "
                    "seed); inflationFraction is (chaosMs - "
                    "faultFreeMs) / faultFreeMs against the fault-free "
                    "fleet of the same size — faults cost reconnects "
                    "and re-leases, never bits, so summaries must "
                    "stay bit-identical at every rate\",\n"
                 << "      \"sweep\": [\n";
            for (std::size_t i = 0; i < chaos_points.size(); ++i) {
                const ChaosPoint &p = chaos_points[i];
                json << "        {\"faultRate\": "
                     << jsonEscapeless(p.rate)
                     << ", \"ms\": " << jsonEscapeless(p.ms)
                     << ", \"inflationFraction\": "
                     << jsonEscapeless(p.inflationFraction)
                     << ", \"deterministic\": "
                     << (p.deterministic ? "true" : "false") << "}"
                     << (i + 1 < chaos_points.size() ? "," : "")
                     << "\n";
            }
            json << "      ]\n    }";
        }
        json << "\n  },\n";
    }
    json << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        json << "    {\"threads\": " << p.threads
             << ", \"shardSize\": " << p.shardSize
             << ", \"ms\": " << jsonEscapeless(p.ms)
             << ", \"speedup\": " << jsonEscapeless(p.speedup)
             << ", \"collectiveWork\": " << p.collectiveWork
             << ", \"completeSorts\": " << p.completeSorts
             << ", \"deterministic\": "
             << (p.deterministic ? "true" : "false") << "}"
             << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";

    // Smoke runs (CI) write to a side file so they never clobber the
    // recorded full-sweep artifact at the repository root.
    const std::string out =
        smoke ? "BENCH_scaling.smoke.json" : "BENCH_scaling.json";
    writeFile(out, json.str());
    std::cout << "\n(json written to " << out << ")\n";
    return all_deterministic ? 0 : 1;
}
