/**
 * @file
 * Google-benchmark microbenchmarks of MTraceCheck's hot kernels:
 * signature encode/decode, observed-edge derivation, and the two
 * checkers over a realistic unique-execution set. These complement the
 * figure benches with stable, per-operation timings.
 *
 * Run: ./build/bench/micro_kernels [--benchmark_filter=...]
 */

#include <benchmark/benchmark.h>

#include <map>

#include "core/collective_checker.h"
#include "core/conventional_checker.h"
#include "core/instr_plan.h"
#include "core/load_analysis.h"
#include "core/signature_codec.h"
#include "graph/graph_builder.h"
#include "graph/topo_sort.h"
#include "graph/ws_inference.h"
#include "sim/executor.h"
#include "sim/order_table.h"
#include "testgen/generator.h"

namespace
{

using namespace mtc;

/** Shared fixture: one test + its unique executions and edge sets. */
struct Workload
{
    TestProgram program;
    LoadValueAnalysis analysis;
    InstrumentationPlan plan;
    SignatureCodec codec;
    std::vector<Execution> executions;   ///< one per unique signature
    std::vector<Signature> signatures;   ///< ascending
    std::vector<DynamicEdgeSet> edgeSets;

    explicit Workload(const char *config_name, std::uint64_t iterations)
        : program(generateTest(parseConfigName(config_name), 42)),
          analysis(program), plan(program, analysis),
          codec(program, analysis, plan)
    {
        OperationalExecutor platform(
            bareMetalConfig(program.config().isa));
        Rng rng(7);
        std::map<Signature, Execution> unique;
        for (std::uint64_t i = 0; i < iterations; ++i) {
            Execution execution = platform.run(program, rng);
            EncodeResult encoded = codec.encode(execution);
            unique.emplace(std::move(encoded.signature),
                           std::move(execution));
        }
        for (auto &[signature, execution] : unique) {
            signatures.push_back(signature);
            edgeSets.push_back(dynamicEdges(program, execution));
            executions.push_back(std::move(execution));
        }
    }
};

Workload &
workload()
{
    static Workload instance("x86-4-100-64", 2048);
    return instance;
}

void
BM_SignatureEncode(benchmark::State &state)
{
    Workload &w = workload();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            w.codec.encode(w.executions[i++ % w.executions.size()]));
    }
}
BENCHMARK(BM_SignatureEncode);

/** encode() into a reused buffer — the flow's per-iteration path. */
void
BM_SignatureEncodeReused(benchmark::State &state)
{
    Workload &w = workload();
    EncodeResult encoded;
    std::size_t i = 0;
    for (auto _ : state) {
        w.codec.encodeInto(w.executions[i++ % w.executions.size()],
                           encoded);
        benchmark::DoNotOptimize(encoded);
    }
}
BENCHMARK(BM_SignatureEncodeReused);

void
BM_SignatureDecode(benchmark::State &state)
{
    Workload &w = workload();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            w.codec.decode(w.signatures[i++ % w.signatures.size()]));
    }
}
BENCHMARK(BM_SignatureDecode);

/** decode() into reused buffers — the unique-signature loop's path. */
void
BM_SignatureDecodeReused(benchmark::State &state)
{
    Workload &w = workload();
    Execution decoded;
    std::vector<std::uint64_t> word_scratch;
    std::size_t i = 0;
    for (auto _ : state) {
        w.codec.decodeInto(w.signatures[i++ % w.signatures.size()],
                           decoded, word_scratch);
        benchmark::DoNotOptimize(decoded);
    }
}
BENCHMARK(BM_SignatureDecodeReused);

void
BM_DeriveObservedEdges(benchmark::State &state)
{
    Workload &w = workload();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dynamicEdges(
            w.program, w.executions[i++ % w.executions.size()]));
    }
}
BENCHMARK(BM_DeriveObservedEdges);

/** Edge derivation with persistent WsOrder/edge-set scratch. */
void
BM_DeriveObservedEdgesReused(benchmark::State &state)
{
    Workload &w = workload();
    WsOrder ws_order;
    DynamicEdgeSet edges;
    std::size_t i = 0;
    for (auto _ : state) {
        const Execution &execution =
            w.executions[i++ % w.executions.size()];
        ws_order.infer(w.program, execution);
        dynamicEdgesInto(w.program, execution, ws_order, edges);
        benchmark::DoNotOptimize(edges);
    }
}
BENCHMARK(BM_DeriveObservedEdgesReused);

/** Store-to-load forwarding via the precomputed priorStore table. */
void
BM_ForwardedValueTable(benchmark::State &state)
{
    Workload &w = workload();
    OrderTable table;
    table.build(w.program, w.program.config().model());
    const auto &threads = w.program.threadBodies();
    for (auto _ : state) {
        std::uint64_t hits = 0;
        for (std::size_t tid = 0; tid < threads.size(); ++tid) {
            const auto &prior = table.priorStore[tid];
            for (std::uint32_t idx = 0; idx < threads[tid].size();
                 ++idx) {
                if (threads[tid][idx].kind == OpKind::Load &&
                    prior[idx] != kNoPriorStore)
                    ++hits;
            }
        }
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_ForwardedValueTable);

/** The same forwarding query as an O(idx) backward scan per load. */
void
BM_ForwardedValueScan(benchmark::State &state)
{
    Workload &w = workload();
    const auto &threads = w.program.threadBodies();
    for (auto _ : state) {
        std::uint64_t hits = 0;
        for (std::size_t tid = 0; tid < threads.size(); ++tid) {
            const auto &body = threads[tid];
            for (std::uint32_t idx = 0; idx < body.size(); ++idx) {
                if (body[idx].kind != OpKind::Load)
                    continue;
                for (std::uint32_t j = idx; j-- > 0;) {
                    if (body[j].kind == OpKind::Store &&
                        body[j].loc == body[idx].loc) {
                        ++hits;
                        break;
                    }
                }
            }
        }
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(BM_ForwardedValueScan);

void
BM_FullTopoSort(benchmark::State &state)
{
    Workload &w = workload();
    ConstraintGraph graph = buildFullGraph(
        w.program, w.executions.front(),
        w.program.config().model());
    for (auto _ : state)
        benchmark::DoNotOptimize(topologicalSort(graph));
}
BENCHMARK(BM_FullTopoSort);

void
BM_ConventionalCheckBatch(benchmark::State &state)
{
    Workload &w = workload();
    ConventionalChecker checker(w.program, w.program.config().model());
    for (auto _ : state) {
        ConventionalStats stats;
        benchmark::DoNotOptimize(checker.check(w.edgeSets, stats));
    }
    state.SetItemsProcessed(state.iterations() * w.edgeSets.size());
}
BENCHMARK(BM_ConventionalCheckBatch);

void
BM_CollectiveCheckBatch(benchmark::State &state)
{
    Workload &w = workload();
    for (auto _ : state) {
        CollectiveChecker checker(w.program,
                                  w.program.config().model());
        benchmark::DoNotOptimize(checker.check(w.edgeSets));
    }
    state.SetItemsProcessed(state.iterations() * w.edgeSets.size());
}
BENCHMARK(BM_CollectiveCheckBatch);

void
BM_PlatformIteration(benchmark::State &state)
{
    Workload &w = workload();
    OperationalExecutor platform(bareMetalConfig(w.program.config().isa));
    Rng rng(11);
    for (auto _ : state)
        benchmark::DoNotOptimize(platform.run(w.program, rng));
}
BENCHMARK(BM_PlatformIteration);

/** One platform run reusing a persistent arena (zero-alloc path). */
void
BM_PlatformIterationArena(benchmark::State &state)
{
    Workload &w = workload();
    OperationalExecutor platform(bareMetalConfig(w.program.config().isa));
    Rng rng(11);
    RunArena arena;
    for (auto _ : state) {
        platform.runInto(w.program, rng, arena);
        benchmark::DoNotOptimize(arena.execution);
    }
}
BENCHMARK(BM_PlatformIterationArena);

} // anonymous namespace

BENCHMARK_MAIN();
