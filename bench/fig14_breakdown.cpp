/**
 * @file
 * Figure 14: breakdown of the collective graph checking — per
 * configuration, the percentage of constraint graphs that needed a
 * complete sort, no re-sorting at all, or an incremental windowed
 * re-sort, plus the average fraction of vertices inside the re-sort
 * window for the incremental ones. The paper observes that ARM tests
 * mostly skip re-sorting entirely while x86 tests re-sort 21%-78% of
 * their vertices.
 */

#include <iostream>

#include "harness/campaign.h"
#include "support/table.h"
#include "testgen/test_config.h"

using namespace mtc;

int
main()
{
    CampaignConfig campaign = CampaignConfig::fromEnv();
    campaign.runConventional = false;

    std::cout << "Figure 14: collective checking breakdown\n"
              << "(iterations=" << campaign.iterations
              << ", tests/config=" << campaign.testsPerConfig << ")\n\n";

    TablePrinter table({"config", "complete", "no re-sort",
                        "incremental", "affected vertices"});

    for (const TestConfig &cfg : figure8Configs()) {
        const ConfigSummary s = runConfig(cfg, campaign);
        table.addRow({cfg.name(), TablePrinter::pct(s.fracComplete),
                      TablePrinter::pct(s.fracNoResort),
                      TablePrinter::pct(s.fracIncremental),
                      TablePrinter::pct(s.avgAffectedFraction)});
    }

    table.print(std::cout);
    writeFile("fig14_breakdown.csv", table.toCsv());
    std::cout << "\n(csv written to fig14_breakdown.csv)\n";
    return 0;
}
