/**
 * @file
 * Figure 6: k-medoids limit study — could a few representative graphs
 * stand in for the whole execution set?
 *
 * Following the paper's Section 4.1: executions are produced by the
 * uniformly-random SC reference simulator; "test 1" is a 2-thread /
 * 50-op / 32-location test (many duplicate interleavings) and "test 2"
 * a 4-thread / 50-op / 32-location test (every execution unique). For
 * k in {1,2,3,5,10,30,100,k_all} we report the total number of
 * differing reads-from relationships to the nearest medoid. The paper
 * draws 1,000 executions; scale with MTC_KM_RUNS.
 */

#include <cstdlib>
#include <iostream>
#include <set>

#include "core/kmedoids.h"
#include "harness/campaign.h"
#include "sim/executor.h"
#include "support/table.h"
#include "testgen/generator.h"

using namespace mtc;

namespace
{

std::vector<Execution>
uniqueScExecutions(const TestProgram &program, unsigned runs,
                   std::uint64_t seed)
{
    OperationalExecutor reference(scReferenceConfig());
    Rng rng(seed);
    std::set<std::vector<std::uint32_t>> seen;
    std::vector<Execution> unique;
    for (unsigned i = 0; i < runs; ++i) {
        Execution execution = reference.run(program, rng);
        if (seen.insert(execution.loadValues).second)
            unique.push_back(std::move(execution));
    }
    return unique;
}

} // anonymous namespace

int
main()
{
    unsigned runs = 1000;
    try {
        if (const char *env = std::getenv("MTC_KM_RUNS"))
            runs = static_cast<unsigned>(
                parseEnvCount("MTC_KM_RUNS", env));
    } catch (const Error &err) {
        std::cerr << "fig06_kmedoids: " << err.what() << "\n";
        return 1;
    }

    std::cout << "Figure 6: k-medoids clustering of constraint graphs\n"
              << "(" << runs << " SC-reference executions per test; "
              << "paper: 1,000)\n\n";

    struct TestCase
    {
        const char *label;
        const char *config;
    };
    const TestCase cases[] = {
        {"test 1 (2 threads)", "x86-2-50-32"},
        {"test 2 (4 threads)", "x86-4-50-32"},
    };

    TablePrinter table({"test", "unique", "k", "total differing rf"});

    for (const TestCase &test_case : cases) {
        const TestConfig cfg = parseConfigName(test_case.config);
        const TestProgram program = generateTest(cfg, 1234);
        const std::vector<Execution> unique =
            uniqueScExecutions(program, runs, 99);

        DistanceMatrix matrix(unique);
        Rng rng(7);
        for (std::uint32_t k : {1u, 2u, 3u, 5u, 10u, 30u, 100u,
                                static_cast<unsigned>(unique.size())}) {
            if (k > unique.size())
                continue;
            const KMedoidsResult result =
                kMedoids(matrix, k, rng, /*max_iter=*/6);
            table.addRow({test_case.label,
                          TablePrinter::fmt(
                              static_cast<std::uint64_t>(unique.size())),
                          TablePrinter::fmt(
                              static_cast<std::uint64_t>(k)),
                          TablePrinter::fmt(result.totalDistance)});
        }
    }

    table.print(std::cout);
    std::cout << "\n(k = unique count gives 0 by construction; the "
                 "shallow decay for test 2 is the paper's argument that "
                 "medoids cannot represent diverse pools)\n";
    writeFile("fig06_kmedoids.csv", table.toCsv());
    std::cout << "(csv written to fig06_kmedoids.csv)\n";
    return 0;
}
