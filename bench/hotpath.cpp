/**
 * @file
 * Execution hot-path sweep: single-thread campaign throughput with the
 * reusable RunArena (the zero-allocation path) versus per-iteration
 * arena reconstruction (the pre-arena behavior), emitted as
 * BENCH_hotpath.json so the hot-path trajectory is tracked from PR to
 * PR.
 *
 * The sweep runs the scaling bench's config set through ValidationFlow
 * with mtc_validate's exact seeding, so its signatures and verdicts
 * match a `mtc_validate --config <name> --tests T --iterations I`
 * campaign bit for bit. `deterministic` asserts that the arena-reusing
 * and arena-rebuilding runs produced identical per-test results; a
 * divergence is a hot-path bug and fails the bench.
 *
 * The per-phase wall-clock breakdown (FlowConfig::profile) of the
 * arena run is recorded so "where does an iteration go" stays a
 * measured fact. Set MTC_HOTPATH_BASELINE to a reference
 * iterations/sec (e.g. the previous release's number from this file)
 * to record an honest speedup; scale with MTC_HOTPATH_TESTS /
 * MTC_ITERATIONS; --smoke runs a seconds-scale version for CI.
 */

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/campaign.h"
#include "harness/validation_flow.h"
#include "sim/executor.h"
#include "support/table.h"
#include "support/timer.h"
#include "testgen/generator.h"

using namespace mtc;

namespace
{

/** The comparable outcome of one test (everything but wall-clock). */
struct TestOutcome
{
    std::uint64_t unique = 0;
    std::uint64_t violating = 0;
    std::uint64_t assertions = 0;
    std::uint64_t crashes = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t collectiveWork = 0;

    bool
    operator==(const TestOutcome &other) const
    {
        return unique == other.unique && violating == other.violating &&
            assertions == other.assertions &&
            crashes == other.crashes &&
            quarantined == other.quarantined &&
            collectiveWork == other.collectiveWork;
    }
};

struct RunResult
{
    double ms = 0.0;
    std::uint64_t iterations = 0;
    std::vector<TestOutcome> outcomes;
    PhaseBreakdown profile;
};

/** One campaign pass over every config (mtc_validate's seeding). */
RunResult
runPass(const std::vector<TestConfig> &configs, unsigned tests,
        std::uint64_t iterations, std::uint64_t seed, bool reuse_arena)
{
    RunResult result;
    WallTimer timer;
    ScopedTimer scope(timer);
    for (const TestConfig &cfg : configs) {
        FlowConfig flow_cfg;
        flow_cfg.iterations = iterations;
        flow_cfg.runConventional = false;
        flow_cfg.exec = bareMetalConfig(cfg.isa);
        flow_cfg.profile = true;
        flow_cfg.reuseArena = reuse_arena;

        Rng seeder(seed);
        for (unsigned t = 0; t < tests; ++t) {
            const TestProgram program = generateTest(cfg, seeder());
            flow_cfg.seed = seeder();
            ValidationFlow flow(flow_cfg);
            const FlowResult r = flow.runTest(program);

            TestOutcome outcome;
            outcome.unique = r.uniqueSignatures;
            outcome.violating = r.violatingSignatures;
            outcome.assertions = r.assertionFailures;
            outcome.crashes = r.platformCrashes;
            outcome.quarantined = r.fault.quarantinedCount();
            outcome.collectiveWork = r.collective.verticesProcessed +
                r.collective.edgesProcessed;
            result.outcomes.push_back(outcome);
            result.iterations += r.iterationsRun;
            result.profile.merge(r.profile);
        }
    }
    timer.stop();
    result.ms = timer.milliseconds();
    return result;
}

double
itersPerSec(const RunResult &run)
{
    return run.ms > 0.0
        ? static_cast<double>(run.iterations) / (run.ms / 1000.0)
        : 0.0;
}

std::string
fmtDouble(double v)
{
    std::ostringstream out;
    out << v;
    return out.str();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else {
            std::cerr << "hotpath: unknown option " << arg
                      << " (only --smoke)\n";
            return 1;
        }
    }

    unsigned tests = smoke ? 2 : 8;
    std::uint64_t iterations = smoke ? 48 : 2048;
    double baseline_ips = 0.0;
    try {
        if (const char *env = std::getenv("MTC_HOTPATH_TESTS"))
            tests = static_cast<unsigned>(
                parseEnvCount("MTC_HOTPATH_TESTS", env));
        if (const char *env = std::getenv("MTC_ITERATIONS"))
            iterations = parseEnvCount("MTC_ITERATIONS", env);
        if (const char *env = std::getenv("MTC_HOTPATH_BASELINE"))
            baseline_ips = std::atof(env);
    } catch (const Error &err) {
        std::cerr << "hotpath: " << err.what() << "\n";
        return 1;
    }

    const std::vector<TestConfig> configs = {
        parseConfigName("x86-4-100-64"),
        parseConfigName("ARM-4-100-64"),
    };
    const std::uint64_t seed = 2017;

    std::cout << "Hot-path sweep: " << configs.size() << " configs x "
              << tests << " tests x " << iterations
              << " iterations, arena-reusing vs per-iteration arena\n\n";

    // Untimed warm-up (one config, one test) so neither timed pass
    // pays the process cold-start (page faults, lazy PLT, predictor
    // warm-up) — without it, whichever pass runs first loses ~2%.
    runPass({configs.front()}, 1, iterations, seed, true);

    const RunResult arena =
        runPass(configs, tests, iterations, seed, true);
    const RunResult fresh =
        runPass(configs, tests, iterations, seed, false);

    const bool deterministic = arena.outcomes == fresh.outcomes;
    const double arena_ips = itersPerSec(arena);
    const double fresh_ips = itersPerSec(fresh);

    TablePrinter table({"mode", "ms", "iters/sec"});
    table.addRow({"arena (reused)", TablePrinter::fmt(arena.ms, 1),
                  TablePrinter::fmt(arena_ips, 0)});
    table.addRow({"fresh (rebuilt)", TablePrinter::fmt(fresh.ms, 1),
                  TablePrinter::fmt(fresh_ips, 0)});
    table.print(std::cout);

    std::cout << "\nhot-path profile (arena run, campaign totals):\n";
    TablePrinter phases({"phase", "time (ms)", "share", "calls"});
    const std::uint64_t sum_ns = arena.profile.sumNs();
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
        const Phase phase = static_cast<Phase>(p);
        const double ms =
            static_cast<double>(arena.profile.phaseNs(phase)) / 1e6;
        const double share = sum_ns
            ? 100.0 * static_cast<double>(arena.profile.phaseNs(phase)) /
                static_cast<double>(sum_ns)
            : 0.0;
        phases.addRow({phaseName(phase), TablePrinter::fmt(ms, 3),
                       TablePrinter::fmt(share, 1) + "%",
                       TablePrinter::fmt(arena.profile.phaseCount(phase))});
    }
    phases.print(std::cout);

    if (baseline_ips > 0.0) {
        std::cout << "\nspeedup vs recorded baseline ("
                  << TablePrinter::fmt(baseline_ips, 0)
                  << " iters/sec): "
                  << TablePrinter::fmt(arena_ips / baseline_ips, 2)
                  << "x\n";
    }
    if (!deterministic)
        std::cerr << "hotpath: DETERMINISM VIOLATION — arena-reusing "
                     "results diverged from per-iteration arenas\n";

    // --- JSON emission ----------------------------------------------
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"hotpath\",\n"
         << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
         << "  \"configs\": [";
    for (std::size_t i = 0; i < configs.size(); ++i)
        json << (i ? ", " : "") << '"' << configs[i].name() << '"';
    json << "],\n"
         << "  \"testsPerConfig\": " << tests << ",\n"
         << "  \"iterations\": " << iterations << ",\n"
         << "  \"arenaMs\": " << fmtDouble(arena.ms) << ",\n"
         << "  \"arenaItersPerSec\": " << fmtDouble(arena_ips) << ",\n"
         << "  \"freshMs\": " << fmtDouble(fresh.ms) << ",\n"
         << "  \"freshItersPerSec\": " << fmtDouble(fresh_ips) << ",\n"
         << "  \"baselineItersPerSec\": " << fmtDouble(baseline_ips)
         << ",\n"
         << "  \"speedupVsBaseline\": "
         << fmtDouble(baseline_ips > 0.0 ? arena_ips / baseline_ips
                                         : 0.0)
         << ",\n"
         << "  \"deterministic\": "
         << (deterministic ? "true" : "false") << ",\n"
         << "  \"profile\": [\n";
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
        const Phase phase = static_cast<Phase>(p);
        json << "    {\"phase\": \"" << phaseName(phase)
             << "\", \"ms\": "
             << fmtDouble(
                    static_cast<double>(arena.profile.phaseNs(phase)) /
                    1e6)
             << ", \"calls\": " << arena.profile.phaseCount(phase)
             << "}" << (p + 1 < kPhaseCount ? "," : "") << "\n";
    }
    json << "  ]\n}\n";

    // Smoke runs (CI) write to a side file so they never clobber the
    // recorded full-sweep artifact at the repository root.
    const std::string out =
        smoke ? "BENCH_hotpath.smoke.json" : "BENCH_hotpath.json";
    writeFile(out, json.str());
    std::cout << "\n(json written to " << out << ")\n";
    return deterministic ? 0 : 1;
}
