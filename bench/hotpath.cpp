/**
 * @file
 * Execution hot-path sweep: single-thread campaign throughput with the
 * batched lockstep engine versus scalar stepping versus per-iteration
 * arena reconstruction (the pre-arena behavior), emitted as
 * BENCH_hotpath.json so the hot-path trajectory is tracked from PR to
 * PR.
 *
 * The sweep runs the scaling bench's config set through ValidationFlow
 * with mtc_validate's exact seeding, so its signatures and verdicts
 * match a `mtc_validate --config <name> --tests T --iterations I`
 * campaign bit for bit. `deterministic` asserts that all three passes
 * produced identical per-test results INCLUDING the signature-set
 * digest — batched, scalar, and arena-rebuilding runs must observe the
 * exact same signature multiset; a divergence is a lockstep-engine or
 * hot-path bug and fails the bench.
 *
 * A fourth, barrier pass runs the retired decode-all-then-check-all
 * pipeline (streamCheck off) as the A/B baseline for the streaming
 * pipeline: barrierDecodeMs/streamDecodeMs and barrierCheckMs/
 * streamCheckMs compare the same work item for item, and
 * sliceReuseRate records how much of the decode the sorted-stream
 * delta actually skipped. The decode phase is batch-width independent,
 * so the batched (streaming) pass is a fair comparison.
 *
 * The per-phase wall-clock breakdown (FlowConfig::profile) of the
 * batched run is recorded so "where does an iteration go" stays a
 * measured fact. Set MTC_HOTPATH_BASELINE to a reference
 * iterations/sec (e.g. the previous release's number from this file)
 * to record an honest speedup; recorded marks drift with the
 * container, so MTC_HOTPATH_BASELINE_REMEASURED additionally records
 * the reference engine re-measured on *this* machine (build the
 * pre-change commit in a worktree, run its bench back to back) — the
 * same-machine A/B is the number that means something. Scale with
 * MTC_HOTPATH_TESTS / MTC_ITERATIONS / --batch; --smoke runs a
 * seconds-scale version for CI.
 */

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/campaign.h"
#include "harness/validation_flow.h"
#include "sim/executor.h"
#include "support/table.h"
#include "support/timer.h"
#include "testgen/generator.h"

using namespace mtc;

namespace
{

/** The comparable outcome of one test (everything but wall-clock). */
struct TestOutcome
{
    std::uint64_t unique = 0;
    std::uint64_t digest = 0; ///< signature-multiset fingerprint
    std::uint64_t violating = 0;
    std::uint64_t assertions = 0;
    std::uint64_t crashes = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t collectiveWork = 0;

    bool
    operator==(const TestOutcome &other) const
    {
        return unique == other.unique && digest == other.digest &&
            violating == other.violating &&
            assertions == other.assertions &&
            crashes == other.crashes &&
            quarantined == other.quarantined &&
            collectiveWork == other.collectiveWork;
    }
};

struct RunResult
{
    double ms = 0.0;
    std::uint64_t iterations = 0;
    std::vector<TestOutcome> outcomes;
    PhaseBreakdown profile;
    std::uint64_t sliceReuses = 0;  ///< delta-decode slices skipped
    std::uint64_t sliceDecodes = 0; ///< slices peeled in full
};

struct PassKnobs
{
    std::uint32_t batch = 0; ///< FlowConfig::batch (1 = scalar)
    bool reuseArena = true;
    bool streamCheck = true; ///< false = barrier pipeline baseline
};

/** One campaign pass over every config (mtc_validate's seeding). */
RunResult
runPass(const std::vector<TestConfig> &configs, unsigned tests,
        std::uint64_t iterations, std::uint64_t seed,
        const PassKnobs &knobs)
{
    RunResult result;
    WallTimer timer;
    ScopedTimer scope(timer);
    for (const TestConfig &cfg : configs) {
        FlowConfig flow_cfg;
        flow_cfg.iterations = iterations;
        flow_cfg.runConventional = false;
        flow_cfg.exec = bareMetalConfig(cfg.isa);
        flow_cfg.profile = true;
        flow_cfg.batch = knobs.batch;
        flow_cfg.reuseArena = knobs.reuseArena;
        flow_cfg.streamCheck = knobs.streamCheck;

        Rng seeder(seed);
        for (unsigned t = 0; t < tests; ++t) {
            const TestProgram program = generateTest(cfg, seeder());
            flow_cfg.seed = seeder();
            ValidationFlow flow(flow_cfg);
            const FlowResult r = flow.runTest(program);

            TestOutcome outcome;
            outcome.unique = r.uniqueSignatures;
            outcome.digest = r.signatureSetDigest;
            outcome.violating = r.violatingSignatures;
            outcome.assertions = r.assertionFailures;
            outcome.crashes = r.platformCrashes;
            outcome.quarantined = r.fault.quarantinedCount();
            outcome.collectiveWork = r.collective.verticesProcessed +
                r.collective.edgesProcessed;
            result.outcomes.push_back(outcome);
            result.iterations += r.iterationsRun;
            result.profile.merge(r.profile);
            result.sliceReuses += r.sliceReuses;
            result.sliceDecodes += r.sliceDecodes;
        }
    }
    timer.stop();
    result.ms = timer.milliseconds();
    return result;
}

double
itersPerSec(const RunResult &run)
{
    return run.ms > 0.0
        ? static_cast<double>(run.iterations) / (run.ms / 1000.0)
        : 0.0;
}

double
phaseMs(const RunResult &run, Phase phase)
{
    return static_cast<double>(run.profile.phaseNs(phase)) / 1e6;
}

std::string
fmtDouble(double v)
{
    std::ostringstream out;
    out << v;
    return out.str();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::uint32_t batch = 32;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--smoke") {
                smoke = true;
            } else if (arg == "--batch" && i + 1 < argc) {
                batch = static_cast<std::uint32_t>(
                    parseEnvCount("--batch", argv[++i], false));
            } else {
                std::cerr << "hotpath: unknown option " << arg
                          << " (only --smoke, --batch N)\n";
                return 1;
            }
        }
    } catch (const Error &err) {
        std::cerr << "hotpath: " << err.what() << "\n";
        return 1;
    }

    unsigned tests = smoke ? 2 : 8;
    std::uint64_t iterations = smoke ? 48 : 2048;
    double baseline_ips = 0.0;
    double baseline_remeasured_ips = 0.0;
    try {
        if (const char *env = std::getenv("MTC_HOTPATH_TESTS"))
            tests = static_cast<unsigned>(
                parseEnvCount("MTC_HOTPATH_TESTS", env));
        if (const char *env = std::getenv("MTC_ITERATIONS"))
            iterations = parseEnvCount("MTC_ITERATIONS", env);
        if (const char *env = std::getenv("MTC_HOTPATH_BASELINE"))
            baseline_ips = std::atof(env);
        if (const char *env =
                std::getenv("MTC_HOTPATH_BASELINE_REMEASURED"))
            baseline_remeasured_ips = std::atof(env);
    } catch (const Error &err) {
        std::cerr << "hotpath: " << err.what() << "\n";
        return 1;
    }

    const std::vector<TestConfig> configs = {
        parseConfigName("x86-4-100-64"),
        parseConfigName("ARM-4-100-64"),
    };
    const std::uint64_t seed = 2017;

    std::cout << "Hot-path sweep: " << configs.size() << " configs x "
              << tests << " tests x " << iterations
              << " iterations; batched (B=" << batch
              << ") vs scalar vs per-iteration arena vs barrier "
                 "pipeline\n\n";

    // Untimed warm-up (one config, one test) so no timed pass pays the
    // process cold-start (page faults, lazy PLT, predictor warm-up) —
    // without it, whichever pass runs first loses ~2%.
    runPass({configs.front()}, 1, iterations, seed,
            {batch, true, true});

    // Batched pass: the shipping configuration (lockstep engine,
    // reused arena, streaming decode→check pipeline).
    const RunResult batched =
        runPass(configs, tests, iterations, seed, {batch, true, true});
    // Scalar pass: same hot path at width 1 — the lockstep-speedup
    // baseline.
    const RunResult scalar =
        runPass(configs, tests, iterations, seed, {1, true, true});
    // Fresh pass: per-iteration arena reconstruction (pre-arena
    // behavior), tracked as the allocation-discipline baseline.
    const RunResult fresh =
        runPass(configs, tests, iterations, seed, {batch, false, true});
    // Barrier pass: decode-all-then-check-all (the retired pipeline),
    // the A/B baseline for the streaming decode and check numbers.
    const RunResult barrier =
        runPass(configs, tests, iterations, seed, {batch, true, false});

    const bool deterministic = batched.outcomes == scalar.outcomes &&
        batched.outcomes == fresh.outcomes &&
        batched.outcomes == barrier.outcomes;
    const double batched_ips = itersPerSec(batched);
    const double scalar_ips = itersPerSec(scalar);
    const double fresh_ips = itersPerSec(fresh);
    const double batch_speedup =
        batched.ms > 0.0 ? scalar.ms / batched.ms : 0.0;
    const double exec_speedup = phaseMs(batched, Phase::Execute) > 0.0
        ? phaseMs(scalar, Phase::Execute) /
            phaseMs(batched, Phase::Execute)
        : 0.0;

    const double barrier_decode_ms = phaseMs(barrier, Phase::Decode);
    const double stream_decode_ms = phaseMs(batched, Phase::Decode);
    const double decode_speedup = stream_decode_ms > 0.0
        ? barrier_decode_ms / stream_decode_ms
        : 0.0;
    const double barrier_check_ms = phaseMs(barrier, Phase::Check);
    const double stream_check_ms = phaseMs(batched, Phase::Check);
    const std::uint64_t slice_total =
        batched.sliceReuses + batched.sliceDecodes;
    const double slice_reuse_rate = slice_total
        ? static_cast<double>(batched.sliceReuses) /
            static_cast<double>(slice_total)
        : 0.0;

    TablePrinter table({"mode", "ms", "iters/sec"});
    table.addRow({"batched (B=" + std::to_string(batch) + ")",
                  TablePrinter::fmt(batched.ms, 1),
                  TablePrinter::fmt(batched_ips, 0)});
    table.addRow({"scalar (B=1)", TablePrinter::fmt(scalar.ms, 1),
                  TablePrinter::fmt(scalar_ips, 0)});
    table.addRow({"fresh (rebuilt arena)",
                  TablePrinter::fmt(fresh.ms, 1),
                  TablePrinter::fmt(fresh_ips, 0)});
    table.addRow({"barrier (no streaming)",
                  TablePrinter::fmt(barrier.ms, 1),
                  TablePrinter::fmt(itersPerSec(barrier), 0)});
    table.print(std::cout);

    std::cout << "\nbatched vs scalar: "
              << TablePrinter::fmt(batch_speedup, 2) << "x overall, "
              << TablePrinter::fmt(exec_speedup, 2)
              << "x execute phase\n";
    std::cout << "streaming decode: "
              << TablePrinter::fmt(barrier_decode_ms, 1)
              << " ms barrier -> "
              << TablePrinter::fmt(stream_decode_ms, 1)
              << " ms streamed ("
              << TablePrinter::fmt(decode_speedup, 2)
              << "x, slice reuse "
              << TablePrinter::fmt(100.0 * slice_reuse_rate, 1)
              << "%)\n";
    std::cout << "streaming check: "
              << TablePrinter::fmt(barrier_check_ms, 1)
              << " ms barrier -> "
              << TablePrinter::fmt(stream_check_ms, 1)
              << " ms streamed\n";

    std::cout << "\nhot-path profile (batched run, campaign totals):\n";
    TablePrinter phases({"phase", "time (ms)", "share", "calls"});
    const std::uint64_t sum_ns = batched.profile.sumNs();
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
        const Phase phase = static_cast<Phase>(p);
        const double ms = phaseMs(batched, phase);
        const double share = sum_ns
            ? 100.0 *
                static_cast<double>(batched.profile.phaseNs(phase)) /
                static_cast<double>(sum_ns)
            : 0.0;
        phases.addRow(
            {phaseName(phase), TablePrinter::fmt(ms, 3),
             TablePrinter::fmt(share, 1) + "%",
             TablePrinter::fmt(batched.profile.phaseCount(phase))});
    }
    phases.print(std::cout);

    if (baseline_ips > 0.0) {
        std::cout << "\nspeedup vs recorded baseline ("
                  << TablePrinter::fmt(baseline_ips, 0)
                  << " iters/sec): "
                  << TablePrinter::fmt(batched_ips / baseline_ips, 2)
                  << "x\n";
    }
    if (baseline_remeasured_ips > 0.0) {
        std::cout << "speedup vs same-machine re-measured baseline ("
                  << TablePrinter::fmt(baseline_remeasured_ips, 0)
                  << " iters/sec): "
                  << TablePrinter::fmt(
                         batched_ips / baseline_remeasured_ips, 2)
                  << "x\n";
    }
    if (!deterministic)
        std::cerr << "hotpath: DETERMINISM VIOLATION — batched, "
                     "scalar, and fresh-arena passes diverged\n";

    // --- JSON emission ----------------------------------------------
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"hotpath\",\n"
         << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
         << "  \"configs\": [";
    for (std::size_t i = 0; i < configs.size(); ++i)
        json << (i ? ", " : "") << '"' << configs[i].name() << '"';
    json << "],\n"
         << "  \"testsPerConfig\": " << tests << ",\n"
         << "  \"iterations\": " << iterations << ",\n"
         << "  \"batch\": " << batch << ",\n"
         << "  \"arenaMs\": " << fmtDouble(batched.ms) << ",\n"
         << "  \"arenaItersPerSec\": " << fmtDouble(batched_ips)
         << ",\n"
         << "  \"scalarMs\": " << fmtDouble(scalar.ms) << ",\n"
         << "  \"scalarItersPerSec\": " << fmtDouble(scalar_ips)
         << ",\n"
         << "  \"freshMs\": " << fmtDouble(fresh.ms) << ",\n"
         << "  \"freshItersPerSec\": " << fmtDouble(fresh_ips) << ",\n"
         << "  \"batchSpeedupVsScalar\": " << fmtDouble(batch_speedup)
         << ",\n"
         << "  \"executeSpeedupVsScalar\": " << fmtDouble(exec_speedup)
         << ",\n"
         << "  \"barrierMs\": " << fmtDouble(barrier.ms) << ",\n"
         << "  \"barrierDecodeMs\": " << fmtDouble(barrier_decode_ms)
         << ",\n"
         << "  \"streamDecodeMs\": " << fmtDouble(stream_decode_ms)
         << ",\n"
         << "  \"decodeSpeedupVsBarrier\": "
         << fmtDouble(decode_speedup) << ",\n"
         << "  \"barrierCheckMs\": " << fmtDouble(barrier_check_ms)
         << ",\n"
         << "  \"streamCheckMs\": " << fmtDouble(stream_check_ms)
         << ",\n"
         << "  \"sliceReuseRate\": " << fmtDouble(slice_reuse_rate)
         << ",\n"
         << "  \"baselineItersPerSec\": " << fmtDouble(baseline_ips)
         << ",\n"
         << "  \"speedupVsBaseline\": "
         << fmtDouble(baseline_ips > 0.0 ? batched_ips / baseline_ips
                                         : 0.0)
         << ",\n"
         << "  \"baselineRemeasuredItersPerSec\": "
         << fmtDouble(baseline_remeasured_ips) << ",\n"
         << "  \"speedupVsRemeasuredBaseline\": "
         << fmtDouble(baseline_remeasured_ips > 0.0
                          ? batched_ips / baseline_remeasured_ips
                          : 0.0)
         << ",\n"
         << "  \"deterministic\": "
         << (deterministic ? "true" : "false") << ",\n"
         << "  \"profile\": [\n";
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
        const Phase phase = static_cast<Phase>(p);
        json << "    {\"phase\": \"" << phaseName(phase)
             << "\", \"ms\": " << fmtDouble(phaseMs(batched, phase))
             << ", \"calls\": " << batched.profile.phaseCount(phase)
             << "}" << (p + 1 < kPhaseCount ? "," : "") << "\n";
    }
    json << "  ]\n}\n";

    // Smoke runs (CI) write to a side file so they never clobber the
    // recorded full-sweep artifact at the repository root.
    const std::string out =
        smoke ? "BENCH_hotpath.smoke.json" : "BENCH_hotpath.json";
    writeFile(out, json.str());
    std::cout << "\n(json written to " << out << ")\n";
    return deterministic ? 0 : 1;
}
