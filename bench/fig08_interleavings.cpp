/**
 * @file
 * Figure 8: number of unique memory-access interleavings per test
 * configuration, for four platform variants — bare-metal with no false
 * sharing, bare-metal with 4 and with 16 shared words per cache line,
 * and the OS-interference (Linux) environment.
 *
 * Scale via MTC_ITERATIONS / MTC_TESTS (defaults are reduced from the
 * paper's 65,536 iterations x 10 tests; see EXPERIMENTS.md). An
 * optional argv[1] comma-separated list of configuration names
 * restricts the run (e.g. "ARM-2-50-32,x86-4-50-64").
 */

#include <iostream>
#include <sstream>

#include "harness/campaign.h"
#include "support/table.h"
#include "testgen/test_config.h"

using namespace mtc;

int
main(int argc, char **argv)
{
    CampaignConfig base = CampaignConfig::fromEnv();

    std::vector<TestConfig> configs = figure8Configs();
    if (argc > 1) {
        std::vector<TestConfig> filtered;
        std::istringstream names(argv[1]);
        std::string name;
        while (std::getline(names, name, ','))
            filtered.push_back(parseConfigName(name));
        configs = filtered;
    }

    std::cout << "Figure 8: unique memory-access interleavings\n"
              << "(iterations=" << base.iterations << ", tests/config="
              << base.testsPerConfig << "; paper: 65536 x 10)\n\n";

    TablePrinter table({"config", "bare-metal", "4 words/line",
                        "16 words/line", "Linux"});

    for (const TestConfig &cfg : configs) {
        std::vector<std::string> row{cfg.name()};

        for (unsigned words_per_line : {1u, 4u, 16u}) {
            TestConfig variant = cfg;
            variant.wordsPerLine = words_per_line;
            CampaignConfig campaign = base;
            campaign.runConventional = false;
            const ConfigSummary summary = runConfig(variant, campaign);
            row.push_back(TablePrinter::fmt(summary.avgUniqueSignatures,
                                            1));
        }

        CampaignConfig linux_campaign = base;
        linux_campaign.runConventional = false;
        linux_campaign.variant = PlatformVariant::Linux;
        const ConfigSummary linux_summary =
            runConfig(cfg, linux_campaign);
        row.push_back(
            TablePrinter::fmt(linux_summary.avgUniqueSignatures, 1));

        table.addRow(std::move(row));
    }

    table.print(std::cout);
    writeFile("fig08_interleavings.csv", table.toCsv());
    std::cout << "\n(csv written to fig08_interleavings.csv)\n";
    return 0;
}
