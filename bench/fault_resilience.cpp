/**
 * @file
 * Fault-resilience sweep: how the fault-tolerant signature-checking
 * pipeline behaves as the readout path degrades.
 *
 * Two scenarios — a clean DUT and a DUT with the paper's bug 2 (LSQ
 * fails to squash loads on invalidation) — are swept across readout
 * fault rates (signature-word bit flips plus proportional torn-store /
 * lost-iteration / duplicate rates). Reported per cell:
 *
 *  - survival: campaigns completing without an uncaught exception
 *    (the hard requirement — a glitching readout must never take the
 *    harness down);
 *  - detection: buggy-DUT tests still reported as a *confirmed*
 *    violation (no false negatives introduced by quarantine);
 *  - false positives: clean-DUT tests reporting a confirmed violation
 *    (corruption mistaken for an MCM bug);
 *  - quarantined signatures and the injector's ground-truth event
 *    count, so detection can be reconciled against injection.
 *
 * Scale with MTC_FAULT_TESTS / MTC_ITERATIONS.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/campaign.h"
#include "harness/validation_flow.h"
#include "sim/executor.h"
#include "support/table.h"
#include "testgen/generator.h"

using namespace mtc;

namespace
{

struct CellResult
{
    unsigned survived = 0;
    unsigned confirmedTests = 0; ///< tests with a confirmed violation
    unsigned crashedTests = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t transient = 0;
    std::uint64_t injectedEvents = 0;
};

CellResult
runCell(bool buggy, double fault_rate, unsigned tests,
        std::uint64_t iterations)
{
    const TestConfig cfg =
        parseConfigName("x86-7-200-32 (16 words/line)");

    FlowConfig flow_cfg;
    flow_cfg.iterations = iterations;
    flow_cfg.runConventional = false;
    flow_cfg.exec = bareMetalConfig(cfg.isa);
    if (buggy) {
        flow_cfg.exec.bug = BugKind::LsqNoSquash;
        flow_cfg.exec.bugProbability = 0.2;
    }
    flow_cfg.fault.bitFlipRate = fault_rate;
    flow_cfg.fault.tornStoreRate = fault_rate / 2;
    flow_cfg.fault.dropRate = fault_rate / 2;
    flow_cfg.fault.duplicateRate = fault_rate / 2;
    flow_cfg.fault.truncationRate = fault_rate / 4;
    // Confirmation re-executions that crash draw on the same budget
    // as the test loop; without it a crashed confirmation run used to
    // read as "violation not reproduced" and silently eat detections.
    flow_cfg.recovery.crashRetries = 1;

    CellResult cell;
    Rng seeder(buggy ? 2024 : 2017);
    for (unsigned t = 0; t < tests; ++t) {
        const TestProgram program = generateTest(cfg, seeder());
        flow_cfg.seed = seeder();
        try {
            ValidationFlow flow(flow_cfg);
            const FlowResult r = flow.runTest(program);
            ++cell.survived;
            if (r.violatingSignatures || r.assertionFailures)
                ++cell.confirmedTests;
            if (r.platformCrashes)
                ++cell.crashedTests;
            cell.quarantined += r.fault.quarantinedCount();
            cell.transient += r.fault.transientViolations;
            cell.injectedEvents += r.fault.injected.totalEvents();
        } catch (const Error &err) {
            std::cerr << "test " << t << " died: " << err.what()
                      << "\n";
        }
    }
    return cell;
}

std::string
percent(unsigned num, unsigned den)
{
    if (!den)
        return "-";
    return TablePrinter::fmt(100.0 * num / den, 1) + "%";
}

} // anonymous namespace

int
main()
{
    unsigned tests = 8;
    std::uint64_t iterations = 160;
    try {
        if (const char *env = std::getenv("MTC_FAULT_TESTS"))
            tests = static_cast<unsigned>(
                parseEnvCount("MTC_FAULT_TESTS", env));
        if (const char *env = std::getenv("MTC_ITERATIONS"))
            iterations = parseEnvCount("MTC_ITERATIONS", env);
    } catch (const Error &err) {
        std::cerr << "fault_resilience: " << err.what() << "\n";
        return 1;
    }

    std::cout << "Fault-resilience sweep (" << tests << " tests x "
              << iterations
              << " iterations per cell; buggy DUT = LSQ bug 2 at "
                 "p=0.2)\n\n";

    const double rates[] = {0.0, 0.001, 0.01, 0.05};

    TablePrinter table({"DUT", "bit-flip rate", "survival",
                        "confirmed", "false positive", "quarantined",
                        "transient", "injected events"});

    for (bool buggy : {false, true}) {
        for (double rate : rates) {
            const CellResult cell =
                runCell(buggy, rate, tests, iterations);
            table.addRow(
                {buggy ? "bug 2 (LSQ)" : "clean",
                 TablePrinter::fmt(rate, 3),
                 percent(cell.survived, tests),
                 buggy ? percent(cell.confirmedTests, tests) : "-",
                 buggy ? "-" : percent(cell.confirmedTests, tests),
                 TablePrinter::fmt(cell.quarantined),
                 TablePrinter::fmt(cell.transient),
                 TablePrinter::fmt(cell.injectedEvents)});
        }
    }

    table.print(std::cout);
    std::cout <<
        "\nReading guide: survival must stay 100% at every rate; the\n"
        "buggy DUT's confirmed rate should stay high as corruption\n"
        "grows (no false negatives from quarantine), while the clean\n"
        "DUT's false-positive rate should stay near zero because\n"
        "corruption-born cyclic signatures fail K-re-execution\n"
        "confirmation and are reclassified as transient.\n";

    writeFile("fault_resilience.csv", table.toCsv());
    std::cout << "\n(csv written to fault_resilience.csv)\n";
    return 0;
}
