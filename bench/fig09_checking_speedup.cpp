/**
 * @file
 * Figure 9: MCM-violation checking — topological-sorting time of the
 * collective checker normalized against the conventional per-graph
 * checker, across the 21 test configurations. The paper reports a 81%
 * average reduction (ratios of 9.4% to 44.9%).
 *
 * Both checkers consume the same pre-built observed-edge sets (graphs
 * "loaded in memory beforehand", as the paper does); the ratio is
 * reported both in wall-clock and in host-independent work counts
 * (vertices + edges processed by the sorts).
 */

#include <iostream>

#include "harness/campaign.h"
#include "support/stats.h"
#include "support/table.h"
#include "testgen/test_config.h"

using namespace mtc;

int
main()
{
    CampaignConfig campaign = CampaignConfig::fromEnv();
    campaign.runConventional = true;

    std::cout << "Figure 9: collective vs conventional checking\n"
              << "(iterations=" << campaign.iterations
              << ", tests/config=" << campaign.testsPerConfig << ")\n\n";

    TablePrinter table({"config", "collective (ms)", "conventional (ms)",
                        "time ratio", "work ratio", "unique graphs"});

    std::vector<double> ratios;
    for (const TestConfig &cfg : figure8Configs()) {
        const ConfigSummary s = runConfig(cfg, campaign);
        if (s.workRatio() > 0.0)
            ratios.push_back(s.workRatio());
        table.addRow({cfg.name(), TablePrinter::fmt(s.collectiveMs, 3),
                      TablePrinter::fmt(s.conventionalMs, 3),
                      TablePrinter::pct(s.speedupRatio()),
                      TablePrinter::pct(s.workRatio()),
                      TablePrinter::fmt(s.avgUniqueSignatures, 1)});
    }

    table.print(std::cout);

    double mean_ratio = 0.0;
    for (double r : ratios)
        mean_ratio += r;
    mean_ratio /= ratios.empty() ? 1 : ratios.size();
    std::cout << "\naverage work ratio: "
              << TablePrinter::pct(mean_ratio) << " (reduction "
              << TablePrinter::pct(1.0 - mean_ratio)
              << "; paper reports 81% average reduction)\n";

    writeFile("fig09_checking_speedup.csv", table.toCsv());
    std::cout << "(csv written to fig09_checking_speedup.csv)\n";
    return 0;
}
