/**
 * @file
 * Model probe: characterize an unknown platform's memory model from
 * the outside, the way a validation engineer probes new silicon.
 *
 * The probe runs relaxation-revealing litmus tests on the platform
 * and checks the observed outcomes against successively stronger
 * models: if the platform exhibits an outcome SC forbids but TSO
 * allows, it is at most TSO; if it exhibits TSO-forbidden outcomes,
 * it is weaker still. The example probes all three built-in platform
 * models plus the paper's two silicon configurations (x86 bare metal
 * = TSO, ARM bare metal = weakly ordered).
 *
 * Build & run:  ./build/examples/model_probe
 */

#include <iostream>

#include "core/conventional_checker.h"
#include "graph/graph_builder.h"
#include "sim/coherent_executor.h"
#include "sim/executor.h"
#include "testgen/litmus.h"

using namespace mtc;

namespace
{

/** Does @p platform ever produce an outcome @p checked forbids? */
bool
exhibitsViolationOf(Platform &platform, MemoryModel checked,
                    unsigned runs)
{
    const TestProgram programs[] = {
        litmus::storeBuffering(),  // SC-discriminating
        litmus::loadBuffering(),   // TSO-discriminating
        litmus::messagePassing(),  // TSO-discriminating
        litmus::iriw(),            // atomicity-discriminating
        litmus::wrc(),
    };

    for (const TestProgram &program : programs) {
        ConventionalChecker checker(program, checked);
        ConventionalStats stats;
        Rng rng(99);
        for (unsigned i = 0; i < runs; ++i) {
            const Execution execution = platform.run(program, rng);
            if (checker.checkOne(dynamicEdges(program, execution),
                                 stats)) {
                return true;
            }
        }
    }
    return false;
}

std::string
probe(Platform &platform, unsigned runs = 1500)
{
    // Strongest model the platform never violates.
    if (!exhibitsViolationOf(platform, MemoryModel::SC, runs))
        return "SC (no relaxation observed)";
    if (!exhibitsViolationOf(platform, MemoryModel::TSO, runs))
        return "TSO (store buffering observed, loads in order)";
    if (!exhibitsViolationOf(platform, MemoryModel::RMO, runs))
        return "weakly ordered (RMO-class relaxations observed)";
    return "BROKEN (violates even RMO: hardware bug?)";
}

} // anonymous namespace

int
main()
{
    ExecutorConfig sc = scReferenceConfig();
    sc.exportCoherenceOrder = false;

    ExecutorConfig tso_uniform;
    tso_uniform.model = MemoryModel::TSO;
    tso_uniform.reorderWindow = 8;

    ExecutorConfig rmo_uniform;
    rmo_uniform.model = MemoryModel::RMO;
    rmo_uniform.reorderWindow = 8;

    OperationalExecutor p_sc(sc), p_tso(tso_uniform),
        p_rmo(rmo_uniform), p_x86(bareMetalConfig(Isa::X86)),
        p_arm(bareMetalConfig(Isa::ARMv7));
    CoherentExecutor p_mesi(gem5LikeConfig());

    struct Probe
    {
        const char *label;
        Platform *platform;
    };
    const Probe probes[] = {
        {"uniform SC reference", &p_sc},
        {"uniform TSO platform", &p_tso},
        {"uniform RMO platform", &p_rmo},
        {"x86 bare-metal (Table 1 system 1)", &p_x86},
        {"ARM bare-metal (Table 1 system 2)", &p_arm},
        {"MESI directory protocol (gem5-like)", &p_mesi},
    };

    std::cout << "Probing platforms with relaxation-revealing litmus "
                 "tests...\n\n";
    for (const Probe &p : probes)
        std::cout << "  " << p.label << "\n    -> " << probe(*p.platform)
                  << "\n\n";

    std::cout << "A probe like this is how MTraceCheck's checker model "
                 "is chosen for\nunfamiliar silicon before a full "
                 "validation campaign.\n";
    return 0;
}
