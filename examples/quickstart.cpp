/**
 * @file
 * Quickstart: validate one constrained-random test end to end.
 *
 * Generates a 4-thread x86-TSO test, runs it a few thousand times on
 * the simulated bare-metal platform, collects interleaving signatures,
 * and checks every unique interleaving against TSO with the collective
 * checker — the whole Figure-1 flow in ~40 lines of user code.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "harness/validation_flow.h"
#include "sim/executor.h"
#include "testgen/generator.h"

int
main()
{
    using namespace mtc;

    // 1. Describe the test (Table 2 parameters).
    TestConfig cfg = parseConfigName("x86-4-50-64");

    // 2. Generate one constrained-random test program.
    TestProgram program = generateTest(cfg, /*seed=*/42);
    std::cout << "Generated " << cfg.name() << ": "
              << program.numOps() << " ops, "
              << program.loads().size() << " loads, "
              << program.stores().size() << " stores\n";

    // 3. Configure the flow: simulated bare-metal platform + checking.
    FlowConfig flow_cfg;
    flow_cfg.iterations = 4096;
    flow_cfg.exec = bareMetalConfig(cfg.isa);
    flow_cfg.seed = 7;

    // 4. Run: instrument -> execute -> collect signatures -> check.
    ValidationFlow flow(flow_cfg);
    FlowResult result = flow.runTest(program);

    std::cout << "Iterations executed : " << result.iterationsRun << "\n"
              << "Unique interleavings: " << result.uniqueSignatures
              << "\n"
              << "Signature size      : "
              << result.intrusive.signatureBytes << " bytes/run\n"
              << "Code size ratio     : " << result.code.ratio() << "x\n"
              << "Collective check    : " << result.collectiveMs
              << " ms (" << result.collective.noResortNeeded
              << " graphs needed no re-sorting)\n"
              << "Conventional check  : " << result.conventionalMs
              << " ms\n";

    if (result.anyViolation()) {
        std::cout << "MCM VIOLATION DETECTED!\n"
                  << result.violationWitness << "\n";
        return 1;
    }
    std::cout << "All observed interleavings comply with "
              << modelName(flow_cfg.exec.model) << ".\n";
    return 0;
}
