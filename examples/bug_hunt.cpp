/**
 * @file
 * Bug hunt: the paper's Section-7 workflow as a user would run it.
 *
 * A design team suspects a load-queue bug in a new core. This example
 * spins up the validation campaign against the buggy platform model
 * (LSQ that fails to squash loads on remote invalidations), detects
 * the load->load ordering violations, and prints the cycle witness in
 * the style of the paper's Figure 13 — the artifact a validation
 * engineer would take to the design team.
 *
 * Build & run:  ./build/examples/bug_hunt
 */

#include <iostream>

#include "harness/validation_flow.h"
#include "sim/executor.h"
#include "testgen/generator.h"

using namespace mtc;

int
main()
{
    // The paper's bug-2 configuration: 7 threads, 200 ops, 32 shared
    // locations packed 16 words to a cache line (heavy false sharing
    // maximizes invalidation traffic, the bug's trigger).
    const TestConfig cfg =
        parseConfigName("x86-7-200-32 (16 words/line)");

    FlowConfig flow_cfg;
    flow_cfg.iterations = 256;
    flow_cfg.exec = bareMetalConfig(cfg.isa);
    flow_cfg.exec.bug = BugKind::LsqNoSquash;
    flow_cfg.exec.bugProbability = 0.05;
    flow_cfg.runConventional = false;

    std::cout << "Hunting for LSQ squash bugs on " << cfg.name()
              << " (" << flow_cfg.iterations << " iterations/test)\n\n";

    Rng seeder(42);
    unsigned tests_flagged = 0;
    std::uint64_t bad_signatures = 0;
    std::string witness;

    const unsigned num_tests = 10;
    for (unsigned t = 0; t < num_tests; ++t) {
        const TestProgram program = generateTest(cfg, seeder());
        flow_cfg.seed = seeder();
        ValidationFlow flow(flow_cfg);
        const FlowResult result = flow.runTest(program);

        std::cout << "test " << t << ": "
                  << result.uniqueSignatures << " unique interleavings, "
                  << result.violatingSignatures << " invalid, "
                  << result.assertionFailures
                  << " runtime assertions\n";

        if (result.anyViolation()) {
            ++tests_flagged;
            bad_signatures += result.violatingSignatures;
            if (witness.empty())
                witness = result.violationWitness;
        }
    }

    std::cout << "\n" << tests_flagged << "/" << num_tests
              << " tests exposed the bug (" << bad_signatures
              << " invalid signatures total)\n";
    if (!witness.empty()) {
        std::cout << "\nFirst violation witness (cf. paper Figure 13):\n"
                  << witness;
    }

    // Sanity: the fixed design must be clean on the same tests.
    std::cout << "\nRe-running test 0 on the fixed design...\n";
    flow_cfg.exec.bug = BugKind::None;
    Rng reseeder(42);
    const TestProgram program = generateTest(cfg, reseeder());
    flow_cfg.seed = reseeder();
    ValidationFlow flow(flow_cfg);
    const FlowResult fixed = flow.runTest(program);
    std::cout << (fixed.anyViolation()
                      ? "STILL BROKEN?! (unexpected)"
                      : "clean: no violations on the fixed design")
              << "\n";
    return tests_flagged > 0 ? 0 : 1;
}
