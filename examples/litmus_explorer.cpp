/**
 * @file
 * Litmus explorer: runs the classic litmus tests (SB, LB, MP, CoRR,
 * IRIW, WRC) on platforms implementing SC, TSO, and RMO, enumerates
 * the outcome sets each platform exhibits, and checks every observed
 * outcome against each model with the constraint-graph checker.
 *
 * This reproduces, on the simulated platform, the folklore matrix
 * that motivates the paper's Section 2: which relaxations each
 * memory model admits — and demonstrates that the checker's verdicts
 * agree with the platform's architecture.
 *
 * Build & run:  ./build/examples/litmus_explorer
 */

#include <iomanip>
#include <iostream>
#include <set>

#include "core/conventional_checker.h"
#include "graph/graph_builder.h"
#include "sim/executor.h"
#include "testgen/litmus.h"

using namespace mtc;

namespace
{

struct NamedTest
{
    const char *name;
    TestProgram program;
};

/** Run @p program under @p model and collect distinct outcomes. */
std::set<std::vector<std::uint32_t>>
observe(const TestProgram &program, MemoryModel model, unsigned runs)
{
    ExecutorConfig cfg;
    cfg.model = model;
    cfg.policy = SchedulingPolicy::UniformRandom;
    cfg.reorderWindow = model == MemoryModel::SC ? 1 : 8;
    OperationalExecutor platform(cfg);
    Rng rng(2017);
    std::set<std::vector<std::uint32_t>> outcomes;
    for (unsigned i = 0; i < runs; ++i)
        outcomes.insert(platform.run(program, rng).loadValues);
    return outcomes;
}

/** Pretty-print one outcome as r0=.. r1=.. (store ids shortened). */
std::string
outcomeText(const TestProgram &program,
            const std::vector<std::uint32_t> &values)
{
    std::string text;
    for (std::size_t i = 0; i < values.size(); ++i) {
        text += "r" + std::to_string(i) + "=";
        if (values[i] == kInitValue) {
            text += "0";
        } else {
            const OpId store = storeIdFromValue(values[i]);
            text += "[t" + std::to_string(store.tid) + " st" +
                std::to_string(store.idx) + "]";
        }
        if (i + 1 < values.size())
            text += " ";
    }
    return text;
}

} // anonymous namespace

int
main()
{
    const NamedTest tests[] = {
        {"SB   (store buffering)", litmus::storeBuffering()},
        {"SB+F (fenced)", litmus::storeBufferingFenced()},
        {"LB   (load buffering)", litmus::loadBuffering()},
        {"MP   (message passing)", litmus::messagePassing()},
        {"CoRR (read coherence)", litmus::corr()},
        {"IRIW", litmus::iriw()},
        {"WRC", litmus::wrc()},
    };
    const MemoryModel models[] = {MemoryModel::SC, MemoryModel::TSO,
                                  MemoryModel::RMO};

    for (const NamedTest &test : tests) {
        std::cout << "=== " << test.name << " ===\n";
        for (MemoryModel platform_model : models) {
            const auto outcomes =
                observe(test.program, platform_model, 2000);
            std::cout << "  platform " << std::setw(3)
                      << modelName(platform_model) << ": "
                      << outcomes.size() << " outcome(s)\n";
            for (const auto &values : outcomes) {
                std::cout << "    " << std::setw(40) << std::left
                          << outcomeText(test.program, values)
                          << std::right << " verdicts:";
                for (MemoryModel checked : models) {
                    Execution execution;
                    execution.loadValues = values;
                    ConventionalChecker checker(test.program, checked);
                    ConventionalStats stats;
                    const bool violation = checker.checkOne(
                        dynamicEdges(test.program, execution), stats);
                    std::cout << "  " << modelName(checked) << ":"
                              << (violation ? "FORBID" : "allow");
                }
                std::cout << "\n";
            }
        }
        std::cout << "\n";
    }

    std::cout << "Note: every outcome a platform produces is allowed "
                 "by its own model\n(soundness), while weaker platforms "
                 "exhibit outcomes stronger models forbid.\n";
    return 0;
}
