/**
 * @file
 * mtc_worker — external worker for distributed validation campaigns.
 *
 * Connects to an mtc_coordinator, handshakes (protocol version,
 * worker name), receives the campaign spec, and executes leased
 * (config, test) units until the coordinator broadcasts Done. Every
 * unit re-derives its seeds from the spec's canonical plan, so the
 * merged summary is bit-identical no matter which worker runs what.
 *
 * A lost connection is retried with capped exponential backoff; a
 * handshake rejection (version mismatch, loss-budget ban) is fatal —
 * it will not heal by retrying.
 *
 * Usage:
 *   mtc_worker --connect HOST:PORT [options]
 *     --connect HOST:PORT  coordinator address (required)
 *     --name S             worker identity in the coordinator's logs
 *                          and loss budgets             [worker-<pid>]
 *     --heartbeat-ms N     liveness ping period         [2000]
 *     --reconnects N       reconnect budget             [5]
 *     --backoff-ms N       reconnect backoff base       [100]
 *     --backoff-cap-ms N   reconnect backoff ceiling    [5000]
 *     --protocol-version N claim this protocol version in the
 *                          handshake (rejection drill)  [current]
 *     --unit-delay-ms N    drill: sleep before each unit (a "slow
 *                          worker" for backpressure tests)   [off]
 *     --exit-after N       drill: _exit() abruptly after sending N
 *                          results (dies mid-batch)          [off]
 *     --fabric-key-file PATH  pre-shared key file; required to join
 *                          a keyed coordinator (also honoured from
 *                          MTC_FABRIC_KEY_FILE)
 *     --drill-corrupt-results  Byzantine drill: silently corrupt
 *                          every result — decodable, plausible,
 *                          wrong; a coordinator audit must catch it
 *     --help
 *
 * The MTC_NET_FAULT_* chaos variables (see mtc_coordinator --help)
 * apply seeded faults to this worker's connection.
 *
 * Exit status:
 *   0  served until Done (or the coordinator went away after at
 *      least one good session — the campaign likely finished)
 *   1  usage / configuration error
 *   3  fatal fabric error: handshake rejected, coordinator never
 *      reachable, or a malformed spec
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "dist/worker_client.h"
#include "harness/campaign_journal.h"
#include "harness/dist_campaign.h"
#include "support/error.h"
#include "support/hmac.h"

using namespace mtc;

namespace
{

void
usage()
{
    std::cout <<
        "mtc_worker: external worker for distributed campaigns\n"
        "  --connect HOST:PORT  coordinator address (required)\n"
        "  --name S          worker identity (stable across\n"
        "                    reconnects; the coordinator's loss\n"
        "                    budget is keyed on it) [worker-<pid>]\n"
        "  --heartbeat-ms N  liveness ping period [2000]\n"
        "  --reconnects N    consecutive connection failures\n"
        "                    tolerated before giving up [5]\n"
        "  --backoff-ms N    reconnect backoff base, doubled per\n"
        "                    attempt [100]\n"
        "  --backoff-cap-ms N  reconnect backoff ceiling [5000]\n"
        "  --protocol-version N  claim this version in the handshake\n"
        "                    (handshake-rejection drill) [current]\n"
        "  --unit-delay-ms N drill: sleep N ms before each unit [off]\n"
        "  --exit-after N    drill: _exit() abruptly after N results\n"
        "                    [off]\n"
        "  --fabric-key-file PATH  pre-shared key file; required to\n"
        "                    join a keyed coordinator (env:\n"
        "                    MTC_FABRIC_KEY_FILE) [keyless]\n"
        "  --drill-corrupt-results  Byzantine drill: silently corrupt\n"
        "                    every result; a coordinator audit\n"
        "                    (--audit-rate) must quarantine this\n"
        "                    worker [off]\n"
        "MTC_NET_FAULT_{DROP,DUP,CORRUPT,DELAY,REORDER,DRIP,\n"
        "DISCONNECT,DELAY_MS,SEED} inject seeded connection faults\n"
        "exit codes: 0 done, 1 usage error, 3 fatal fabric error\n"
        "            (rejected handshake / unreachable coordinator)\n";
}

std::uint64_t
parseCount(const std::string &flag, const std::string &text)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t value = std::stoull(text, &pos);
        if (pos == text.size() && text[0] != '-')
            return value;
    } catch (const std::exception &) {
    }
    throw ConfigError(flag + " expects an unsigned integer, got \"" +
                      text + "\"");
}

struct Options
{
    WorkerClientConfig client;
    bool corruptResults = false;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    WorkerClientConfig &cfg = opt.client;
    cfg.name = "worker-" + std::to_string(::getpid());
    std::string key_file;
    if (const char *env = std::getenv("MTC_FABRIC_KEY_FILE")) {
        if (*env == '\0')
            throw ConfigError("MTC_FABRIC_KEY_FILE is set but empty; "
                              "unset it or give a path");
        key_file = env;
    }
    bool connected = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                throw ConfigError("missing value after " + arg);
            return argv[i];
        };
        if (arg == "--connect") {
            const std::string addr = next();
            const std::size_t colon = addr.rfind(':');
            if (colon == std::string::npos || colon == 0 ||
                colon + 1 == addr.size())
                throw ConfigError(
                    "--connect expects HOST:PORT, got \"" + addr +
                    "\"");
            cfg.host = addr.substr(0, colon);
            cfg.port = static_cast<std::uint16_t>(
                parseCount("--connect port", addr.substr(colon + 1)));
            connected = true;
        } else if (arg == "--name")
            cfg.name = next();
        else if (arg == "--heartbeat-ms")
            cfg.heartbeatMs = parseCount(arg, next());
        else if (arg == "--reconnects")
            cfg.maxReconnects =
                static_cast<unsigned>(parseCount(arg, next()));
        else if (arg == "--backoff-ms")
            cfg.backoffBaseMs = parseCount(arg, next());
        else if (arg == "--backoff-cap-ms")
            cfg.backoffCapMs = parseCount(arg, next());
        else if (arg == "--protocol-version")
            cfg.protocolVersion =
                static_cast<std::uint32_t>(parseCount(arg, next()));
        else if (arg == "--unit-delay-ms")
            cfg.unitDelayMs = parseCount(arg, next());
        else if (arg == "--exit-after")
            cfg.exitAfterUnits = parseCount(arg, next());
        else if (arg == "--fabric-key-file") {
            key_file = next();
            if (key_file.empty())
                throw ConfigError(
                    "--fabric-key-file expects a non-empty path");
        } else if (arg == "--drill-corrupt-results")
            opt.corruptResults = true;
        else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            throw ConfigError("unknown option: " + arg);
        }
    }
    if (!connected)
        throw ConfigError("--connect HOST:PORT is required");
    if (!key_file.empty())
        cfg.key = loadFabricKey(key_file);
    cfg.netFault = netFaultFromEnv(cfg.netFault);
    return opt;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt;
    try {
        opt = parseArgs(argc, argv);
    } catch (const Error &err) {
        std::cerr << "mtc_worker: " << err.what() << "\n";
        return 1;
    }
    const WorkerClientConfig &cfg = opt.client;

    try {
        std::cout << "mtc_worker '" << cfg.name << "': connecting to "
                  << cfg.host << ":" << cfg.port
                  << (cfg.key.empty() ? "" : " (authenticated)")
                  << "\n";
        // The runner is rebuilt on every handshake: after a
        // coordinator restart the spec may legitimately differ, and a
        // stale plan must never execute a new campaign's units.
        std::unique_ptr<CampaignUnitRunner> runner;
        const bool corrupt = opt.corruptResults;
        const WorkerRunStats stats = runWorkerClient(
            cfg,
            [&runner](const std::vector<std::uint8_t> &spec_bytes) {
                runner = std::make_unique<CampaignUnitRunner>(
                    decodeCampaignSpec(spec_bytes));
            },
            [&runner, corrupt](
                std::uint64_t,
                const std::vector<std::uint8_t> &request) {
                std::vector<std::uint8_t> response =
                    runner->run(request);
                if (corrupt) {
                    // Byzantine drill: a plausible lie, same shape as
                    // the loopback drill in dist_campaign.cc.
                    UnitRecord rec = decodeUnitRecord(response);
                    rec.outcome.result.uniqueSignatures += 1;
                    rec.outcome.result.signatureSetDigest ^=
                        0x5851f42d4c957f2dull;
                    response = encodeUnitRecord(rec);
                }
                return response;
            });
        std::cout << "mtc_worker '" << cfg.name << "': done, "
                  << stats.unitsExecuted << " units executed, "
                  << stats.reconnects << " reconnects\n";
        return 0;
    } catch (const Error &err) {
        std::cerr << "mtc_worker: " << err.what() << "\n";
        return 3;
    } catch (const std::exception &err) {
        std::cerr << "mtc_worker: " << err.what() << "\n";
        return 3;
    }
}
