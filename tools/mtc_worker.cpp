/**
 * @file
 * mtc_worker — external worker for distributed validation campaigns.
 *
 * Connects to an mtc_coordinator, handshakes (protocol version,
 * worker name), receives the campaign spec, and executes leased
 * (config, test) units until the coordinator broadcasts Done. Every
 * unit re-derives its seeds from the spec's canonical plan, so the
 * merged summary is bit-identical no matter which worker runs what.
 *
 * A lost connection is retried with capped exponential backoff; a
 * handshake rejection (version mismatch, loss-budget ban) is fatal —
 * it will not heal by retrying.
 *
 * Usage:
 *   mtc_worker --connect HOST:PORT [options]
 *     --connect HOST:PORT  coordinator address (required)
 *     --name S             worker identity in the coordinator's logs
 *                          and loss budgets             [worker-<pid>]
 *     --heartbeat-ms N     liveness ping period         [2000]
 *     --reconnects N       reconnect budget             [5]
 *     --backoff-ms N       reconnect backoff base       [100]
 *     --backoff-cap-ms N   reconnect backoff ceiling    [5000]
 *     --protocol-version N claim this protocol version in the
 *                          handshake (rejection drill)  [current]
 *     --unit-delay-ms N    drill: sleep before each unit (a "slow
 *                          worker" for backpressure tests)   [off]
 *     --exit-after N       drill: _exit() abruptly after sending N
 *                          results (dies mid-batch)          [off]
 *     --help
 *
 * Exit status:
 *   0  served until Done (or the coordinator went away after at
 *      least one good session — the campaign likely finished)
 *   1  usage / configuration error
 *   3  fatal fabric error: handshake rejected, coordinator never
 *      reachable, or a malformed spec
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "dist/worker_client.h"
#include "harness/dist_campaign.h"
#include "support/error.h"

using namespace mtc;

namespace
{

void
usage()
{
    std::cout <<
        "mtc_worker: external worker for distributed campaigns\n"
        "  --connect HOST:PORT  coordinator address (required)\n"
        "  --name S          worker identity (stable across\n"
        "                    reconnects; the coordinator's loss\n"
        "                    budget is keyed on it) [worker-<pid>]\n"
        "  --heartbeat-ms N  liveness ping period [2000]\n"
        "  --reconnects N    consecutive connection failures\n"
        "                    tolerated before giving up [5]\n"
        "  --backoff-ms N    reconnect backoff base, doubled per\n"
        "                    attempt [100]\n"
        "  --backoff-cap-ms N  reconnect backoff ceiling [5000]\n"
        "  --protocol-version N  claim this version in the handshake\n"
        "                    (handshake-rejection drill) [current]\n"
        "  --unit-delay-ms N drill: sleep N ms before each unit [off]\n"
        "  --exit-after N    drill: _exit() abruptly after N results\n"
        "                    [off]\n"
        "exit codes: 0 done, 1 usage error, 3 fatal fabric error\n"
        "            (rejected handshake / unreachable coordinator)\n";
}

std::uint64_t
parseCount(const std::string &flag, const std::string &text)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t value = std::stoull(text, &pos);
        if (pos == text.size() && text[0] != '-')
            return value;
    } catch (const std::exception &) {
    }
    throw ConfigError(flag + " expects an unsigned integer, got \"" +
                      text + "\"");
}

WorkerClientConfig
parseArgs(int argc, char **argv)
{
    WorkerClientConfig cfg;
    cfg.name = "worker-" + std::to_string(::getpid());
    bool connected = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                throw ConfigError("missing value after " + arg);
            return argv[i];
        };
        if (arg == "--connect") {
            const std::string addr = next();
            const std::size_t colon = addr.rfind(':');
            if (colon == std::string::npos || colon == 0 ||
                colon + 1 == addr.size())
                throw ConfigError(
                    "--connect expects HOST:PORT, got \"" + addr +
                    "\"");
            cfg.host = addr.substr(0, colon);
            cfg.port = static_cast<std::uint16_t>(
                parseCount("--connect port", addr.substr(colon + 1)));
            connected = true;
        } else if (arg == "--name")
            cfg.name = next();
        else if (arg == "--heartbeat-ms")
            cfg.heartbeatMs = parseCount(arg, next());
        else if (arg == "--reconnects")
            cfg.maxReconnects =
                static_cast<unsigned>(parseCount(arg, next()));
        else if (arg == "--backoff-ms")
            cfg.backoffBaseMs = parseCount(arg, next());
        else if (arg == "--backoff-cap-ms")
            cfg.backoffCapMs = parseCount(arg, next());
        else if (arg == "--protocol-version")
            cfg.protocolVersion =
                static_cast<std::uint32_t>(parseCount(arg, next()));
        else if (arg == "--unit-delay-ms")
            cfg.unitDelayMs = parseCount(arg, next());
        else if (arg == "--exit-after")
            cfg.exitAfterUnits = parseCount(arg, next());
        else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            throw ConfigError("unknown option: " + arg);
        }
    }
    if (!connected)
        throw ConfigError("--connect HOST:PORT is required");
    return cfg;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    WorkerClientConfig cfg;
    try {
        cfg = parseArgs(argc, argv);
    } catch (const Error &err) {
        std::cerr << "mtc_worker: " << err.what() << "\n";
        return 1;
    }

    try {
        std::cout << "mtc_worker '" << cfg.name << "': connecting to "
                  << cfg.host << ":" << cfg.port << "\n";
        // The runner is rebuilt on every handshake: after a
        // coordinator restart the spec may legitimately differ, and a
        // stale plan must never execute a new campaign's units.
        std::unique_ptr<CampaignUnitRunner> runner;
        const WorkerRunStats stats = runWorkerClient(
            cfg,
            [&runner](const std::vector<std::uint8_t> &spec_bytes) {
                runner = std::make_unique<CampaignUnitRunner>(
                    decodeCampaignSpec(spec_bytes));
            },
            [&runner](std::uint64_t,
                      const std::vector<std::uint8_t> &request) {
                return runner->run(request);
            });
        std::cout << "mtc_worker '" << cfg.name << "': done, "
                  << stats.unitsExecuted << " units executed, "
                  << stats.reconnects << " reconnects\n";
        return 0;
    } catch (const Error &err) {
        std::cerr << "mtc_worker: " << err.what() << "\n";
        return 3;
    } catch (const std::exception &err) {
        std::cerr << "mtc_worker: " << err.what() << "\n";
        return 3;
    }
}
