/**
 * @file
 * mtc_validate — command-line MCM validation campaigns.
 *
 * Runs the full MTraceCheck flow (generate -> instrument -> execute ->
 * collect signatures -> collectively check) on a simulated platform
 * and reports per-test results plus campaign totals.
 *
 * Usage:
 *   mtc_validate [options]
 *     --config NAME     test configuration, e.g. x86-4-50-64 or
 *                       "x86-7-200-32 (16 words/line)"  [x86-4-50-64]
 *     --tests N         tests in the campaign                 [10]
 *     --iterations N    runs per test                         [2048]
 *     --seed N          campaign seed                         [2017]
 *     --platform KIND   timed | uniform | mesi | linux        [timed]
 *     --model M         override checked model: sc|tso|rmo
 *     --bug KIND        none | upgrade | lsq | putx           [none]
 *     --bug-prob P      bug firing probability                [0.1]
 *     --cache-lines N   per-core L1 capacity (0 = unbounded)  [0]
 *     --fault-bitflip P per-word signature bit-flip rate      [0]
 *     --fault-torn P    torn multi-word store rate            [0]
 *     --fault-truncate P  per-thread stream truncation rate   [0]
 *     --fault-drop P    lost-iteration rate                   [0]
 *     --fault-dup P     duplicated-iteration rate             [0]
 *     --fault-seed N    fault injector seed                   [0xfa017]
 *     --confirm-k N     K-re-execution confirmation budget    [2]
 *     --crash-retries N reseeded retries after platform crash [0]
 *     --journal PATH    write-ahead unit journal (crash-safe)
 *     --resume          replay completed units from --journal
 *     --test-timeout-ms N  per-test watchdog deadline          [off]
 *     --error-budget N  circuit breaker: stop after N errors  [off]
 *     --stall-after N   drill: wedge every run after N steps  [off]
 *     --sandbox         run each test in a forked worker process
 *     --sandbox-mem-mb N  per-worker RLIMIT_AS budget          [off]
 *     --sandbox-cpu-s N per-worker RLIMIT_CPU budget          [off]
 *     --distributed N   run each test on a fleet of N loopback TCP
 *                       workers (the fabric of mtc_coordinator) [off]
 *     --die-after N     drill: Nth run raises a real SIGSEGV  [off]
 *     --leak-after N    drill: Nth run allocation-bombs       [off]
 *     --verbose         per-test detail rows
 *     --help
 *
 * Exit status (scripts cleanly into regression farms):
 *   0  clean — no violation, no readout corruption
 *   1  configuration / usage error
 *   2  confirmed MCM violation (cyclic signature reproduced under the
 *      K-re-execution protocol, or an instrumented-chain assertion)
 *   3  corruption only — signatures were quarantined or violations
 *      were reclassified as injected-fault transients, nothing
 *      confirmed
 *   4  platform crash (protocol deadlock) without a confirmed
 *      violation
 *   5  hang — the watchdog reclaimed at least one wedged test
 *   6  circuit breaker tripped — the campaign stopped early
 */

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <csignal>

#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "dist/coordinator.h"
#include "dist/worker_client.h"
#include "harness/campaign.h"
#include "harness/campaign_journal.h"
#include "harness/dist_campaign.h"
#include "harness/exit_codes.h"
#include "harness/sandbox.h"
#include "harness/validation_flow.h"
#include "harness/watchdog.h"
#include "support/hmac.h"
#include "support/process.h"
#include "support/rng.h"
#include "sim/coherent_executor.h"
#include "sim/executor.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "testgen/generator.h"

using namespace mtc;

namespace
{

struct Options
{
    std::string config = "x86-4-50-64";
    unsigned tests = 10;
    std::uint64_t iterations = 2048;
    std::uint64_t seed = 2017;
    std::string platform = "timed";
    std::optional<MemoryModel> model;
    std::string bug = "none";
    double bugProb = 0.1;
    std::uint32_t cacheLines = 0;
    FaultConfig fault;
    RecoveryConfig recovery;

    /** Worker threads for the in-test parallel stages (decode fan-out
     * and sharded checking); 0 = hardware concurrency. Defaults to
     * MTC_THREADS when set, else 1 (serial). */
    unsigned threads = 1;

    /** Lockstep batch width of the test loop; 0 = flow default (32),
     * 1 = scalar stepping. Summaries are bit-identical at any width.
     * Defaults to MTC_BATCH when set. */
    std::uint32_t batch = 0;

    /** Collective-checker shard size; 0 = unsharded. */
    std::size_t shardSize = 0;

    /** Streaming decode→check pipeline (delta decode + incremental
     * edge derivation); false runs the barrier baseline. Results are
     * bit-identical either way. */
    bool streamCheck = true;

    /** Bounded decode→check window of the overlapped pipeline;
     * 0 = unbounded. Defaults to MTC_STREAM_WINDOW when set. */
    std::size_t streamWindow = 64;

    /** Write-ahead journal path; empty = no journal. Defaults to
     * MTC_JOURNAL when set. */
    std::string journalPath;

    /** Replay completed units from the journal instead of re-running
     * them (requires --journal). */
    bool resume = false;

    /** Per-test watchdog deadline in ms; 0 = no watchdog. Defaults to
     * MTC_TEST_TIMEOUT_MS when set. */
    std::uint64_t testTimeoutMs = 0;

    /** Circuit breaker: stop the campaign after this many error
     * events (hangs, crashes, quarantines); 0 = never. */
    unsigned errorBudget = 0;

    /** Liveness drill: wedge every platform run after N scheduler
     * steps (0 = off). Pair with --test-timeout-ms. */
    std::uint64_t stallAfterSteps = 0;

    /** Run every test in a forked sandbox worker (crash containment);
     * --threads then sets the worker process count. Defaults to
     * MTC_SANDBOX when set. */
    bool sandbox = false;

    /** Per-worker RLIMIT_AS budget in MB (0 = unlimited; ignored in
     * sanitizer builds). Defaults to MTC_SANDBOX_MEM_MB. */
    std::uint64_t sandboxMemMb = 0;

    /** Per-worker RLIMIT_CPU budget in seconds (0 = unlimited).
     * Defaults to MTC_SANDBOX_CPU_S. */
    std::uint64_t sandboxCpuS = 0;

    /** Run every test on a fleet of this many loopback TCP workers
     * (the mtc_coordinator fabric, self-contained on localhost);
     * 0 = off. Mutually exclusive with --sandbox. */
    unsigned distributed = 0;

    /** Pre-shared fabric key file for --distributed; empty = keyless
     * loopback. Defaults to MTC_FABRIC_KEY_FILE when set. */
    std::string fabricKeyFile;

    /** Byzantine audit rate for --distributed: fraction of tests
     * re-executed by a second worker and cross-compared. Defaults to
     * MTC_AUDIT_RATE when set. */
    double auditRate = 0.0;

    /** Seeded chaos faults on every fabric connection, from the
     * MTC_NET_FAULT_* variables. */
    NetFaultConfig netFault;

    /** Hard-crash drill: the Nth platform run raises a real SIGSEGV
     * (0 = off). In-process this kills the campaign; under --sandbox
     * it is contained — that contrast is the drill's purpose. */
    std::uint64_t dieAfterRuns = 0;

    /** Allocation-bomb drill: the Nth platform run leaks until
     * operator new fails (0 = off). Exercises --sandbox-mem-mb. */
    std::uint64_t leakAfterRuns = 0;

    bool verbose = false;

    /** Print the per-phase wall-clock breakdown of the campaign. */
    bool profile = false;
};

void
usage()
{
    std::cout <<
        "mtc_validate: MTraceCheck validation campaign runner\n"
        "  --config NAME     test configuration [x86-4-50-64]\n"
        "  --tests N         tests in the campaign [10]\n"
        "  --iterations N    runs per test [2048]\n"
        "  --seed N          campaign seed [2017]\n"
        "  --platform KIND   timed | uniform | mesi | linux [timed]\n"
        "  --model M         override checked model: sc|tso|rmo\n"
        "  --bug KIND        none | upgrade | lsq | putx [none]\n"
        "  --bug-prob P      bug firing probability [0.1]\n"
        "  --cache-lines N   per-core L1 capacity, 0=unbounded [0]\n"
        "  --fault-bitflip P per-word signature bit-flip rate [0]\n"
        "  --fault-torn P    torn multi-word store rate [0]\n"
        "  --fault-truncate P per-thread stream truncation rate [0]\n"
        "  --fault-drop P    lost-iteration rate [0]\n"
        "  --fault-dup P     duplicated-iteration rate [0]\n"
        "  --fault-seed N    fault injector seed [0xfa017]\n"
        "  --confirm-k N     K-re-execution confirmation budget [2]\n"
        "  --crash-retries N reseeded retries after crash [0]\n"
        "  --threads N       worker threads for signature decoding and\n"
        "                    sharded checking; 0 = all hardware threads\n"
        "                    (default: MTC_THREADS if set, else 1)\n"
        "  --batch N         lockstep batch width of the test loop:\n"
        "                    iterations dispatched per batched-engine\n"
        "                    call; 1 = scalar stepping; summaries are\n"
        "                    bit-identical at any width; 0 = default\n"
        "                    width (default: MTC_BATCH if set, else 0)\n"
        "  --shard-size N    collective-checker shard size; each shard\n"
        "                    is checked independently at the price of\n"
        "                    one extra complete sort; 0 = unsharded [0]\n"
        "  --no-stream-check run the barrier decode-then-check baseline\n"
        "                    instead of the streaming pipeline (delta\n"
        "                    decode + incremental edge derivation);\n"
        "                    results are bit-identical either way\n"
        "  --stream-window N bounded decode->check window of the\n"
        "                    overlapped streaming pipeline (diffs in\n"
        "                    flight when --threads > 1); 0 = unbounded\n"
        "                    (default: MTC_STREAM_WINDOW if set,\n"
        "                    else 64)\n"
        "  --journal PATH    append each completed test to a crash-safe\n"
        "                    write-ahead journal at PATH\n"
        "  --resume          replay tests already in the journal and\n"
        "                    run only what is missing; the final\n"
        "                    summary is bit-identical to an\n"
        "                    uninterrupted run (requires --journal)\n"
        "  --test-timeout-ms N  watchdog: cancel any test attempt\n"
        "                    still running after N ms and report it\n"
        "                    hung; 0 = no watchdog [0]\n"
        "  --error-budget N  circuit breaker: once hangs + crashes +\n"
        "                    quarantined signatures reach N, skip the\n"
        "                    remaining tests; 0 = never [0]\n"
        "  --stall-after N   liveness drill: wedge every platform run\n"
        "                    after N scheduler steps (use with\n"
        "                    --test-timeout-ms to exercise the\n"
        "                    watchdog); 0 = off [0]\n"
        "  --sandbox         run every test in a pre-forked worker\n"
        "                    process: a real crash (SIGSEGV, abort,\n"
        "                    rlimit breach) is contained, charged to\n"
        "                    --crash-retries and --error-budget, and\n"
        "                    the worker respawned; the summary stays\n"
        "                    bit-identical to in-process. --threads\n"
        "                    sets the worker process count\n"
        "  --sandbox-mem-mb N  per-worker address-space budget in MB;\n"
        "                    a breach is classified as an OOM loss;\n"
        "                    0 = unlimited [0]\n"
        "  --sandbox-cpu-s N per-worker CPU budget in seconds; a\n"
        "                    breach dies with SIGXCPU; 0 = off [0]\n"
        "  --distributed N   run every test on a fleet of N loopback\n"
        "                    TCP workers over the mtc_coordinator\n"
        "                    fabric; a worker death reassigns its\n"
        "                    leased tests and the summary stays\n"
        "                    bit-identical; 0 = off [0]\n"
        "  --fabric-key-file PATH  authenticate the --distributed\n"
        "                    fleet with this pre-shared key (env:\n"
        "                    MTC_FABRIC_KEY_FILE) [keyless]\n"
        "  --audit-rate P    Byzantine audit: re-execute this\n"
        "                    fraction of tests on a second worker and\n"
        "                    cross-compare (env: MTC_AUDIT_RATE) [0]\n"
        "  --die-after N     hard-crash drill: the Nth platform run\n"
        "                    raises a REAL SIGSEGV. Without --sandbox\n"
        "                    this kills the campaign (that is the\n"
        "                    point); with it, containment is proven\n"
        "                    end to end; 0 = off [0]\n"
        "  --leak-after N    allocation-bomb drill: the Nth run leaks\n"
        "                    until new fails; exercises the\n"
        "                    --sandbox-mem-mb path; 0 = off [0]\n"
        "  --profile         per-phase wall-clock breakdown (execute,\n"
        "                    encode, accumulate, sort-unique, decode,\n"
        "                    check, ...) aggregated over the campaign\n"
        "  --verbose         per-test detail rows\n"
        "env: MTC_THREADS sets the --threads default (0 = all hardware\n"
        "     threads); results are identical at any thread count.\n"
        "     MTC_JOURNAL and MTC_TEST_TIMEOUT_MS set the --journal\n"
        "     and --test-timeout-ms defaults. MTC_SANDBOX=1 turns on\n"
        "     --sandbox; MTC_SANDBOX_MEM_MB / MTC_SANDBOX_CPU_S set\n"
        "     the worker budgets\n"
        "exit codes: 0 clean, 1 config error, 2 confirmed violation,\n"
        "            3 corruption only, 4 platform crash (including a\n"
        "            contained sandbox worker crash), 5 hang,\n"
        "            6 circuit breaker tripped\n";
}

/** Strict numeric flag values: errors name the flag, not "stod". */
std::uint64_t
parseCount(const std::string &flag, const std::string &text, int base = 10)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t value = std::stoull(text, &pos, base);
        if (pos == text.size() && text[0] != '-')
            return value;
    } catch (const std::exception &) {
    }
    throw ConfigError(flag + " expects an unsigned integer, got \"" +
                      text + "\"");
}

double
parseRate(const std::string &flag, const std::string &text)
{
    try {
        std::size_t pos = 0;
        const double value = std::stod(text, &pos);
        if (pos == text.size())
            return value;
    } catch (const std::exception &) {
    }
    throw ConfigError(flag + " expects a number, got \"" + text + "\"");
}

BugKind
parseBug(const std::string &text)
{
    if (text == "none")
        return BugKind::None;
    if (text == "upgrade")
        return BugKind::StaleLoadOnUpgrade;
    if (text == "lsq")
        return BugKind::LsqNoSquash;
    if (text == "putx")
        return BugKind::PutxGetxRace;
    throw ConfigError("unknown bug kind: " + text);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    // Environment defaults first so explicit flags win.
    if (const char *env = std::getenv("MTC_THREADS"))
        opt.threads = static_cast<unsigned>(
            parseEnvCount("MTC_THREADS", env, true));
    if (const char *env = std::getenv("MTC_BATCH"))
        opt.batch = static_cast<std::uint32_t>(
            parseEnvCount("MTC_BATCH", env, true));
    if (const char *env = std::getenv("MTC_STREAM_WINDOW"))
        opt.streamWindow = static_cast<std::size_t>(
            parseEnvCount("MTC_STREAM_WINDOW", env, true));
    if (const char *env = std::getenv("MTC_JOURNAL")) {
        if (*env == '\0')
            throw ConfigError(
                "MTC_JOURNAL is set but empty; unset it or give a path");
        opt.journalPath = env;
    }
    if (const char *env = std::getenv("MTC_TEST_TIMEOUT_MS"))
        opt.testTimeoutMs =
            parseEnvCount("MTC_TEST_TIMEOUT_MS", env, true);
    if (const char *env = std::getenv("MTC_SANDBOX"))
        opt.sandbox = parseEnvCount("MTC_SANDBOX", env, true) != 0;
    if (const char *env = std::getenv("MTC_SANDBOX_MEM_MB"))
        opt.sandboxMemMb =
            parseEnvCount("MTC_SANDBOX_MEM_MB", env, true);
    if (const char *env = std::getenv("MTC_SANDBOX_CPU_S"))
        opt.sandboxCpuS = parseEnvCount("MTC_SANDBOX_CPU_S", env, true);
    if (const char *env = std::getenv("MTC_FABRIC_KEY_FILE")) {
        if (*env == '\0')
            throw ConfigError("MTC_FABRIC_KEY_FILE is set but empty; "
                              "unset it or give a path");
        opt.fabricKeyFile = env;
    }
    if (const char *env = std::getenv("MTC_AUDIT_RATE"))
        opt.auditRate = parseEnvRate("MTC_AUDIT_RATE", env);
    opt.netFault = netFaultFromEnv(opt.netFault);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                throw ConfigError("missing value after " + arg);
            return argv[i];
        };
        if (arg == "--config")
            opt.config = next();
        else if (arg == "--tests")
            opt.tests = static_cast<unsigned>(parseCount(arg, next()));
        else if (arg == "--iterations")
            opt.iterations = parseCount(arg, next());
        else if (arg == "--seed")
            opt.seed = parseCount(arg, next());
        else if (arg == "--platform")
            opt.platform = next();
        else if (arg == "--model")
            opt.model = parseModel(next());
        else if (arg == "--bug")
            opt.bug = next();
        else if (arg == "--bug-prob")
            opt.bugProb = parseRate(arg, next());
        else if (arg == "--cache-lines")
            opt.cacheLines =
                static_cast<std::uint32_t>(parseCount(arg, next()));
        else if (arg == "--fault-bitflip")
            opt.fault.bitFlipRate = parseRate(arg, next());
        else if (arg == "--fault-torn")
            opt.fault.tornStoreRate = parseRate(arg, next());
        else if (arg == "--fault-truncate")
            opt.fault.truncationRate = parseRate(arg, next());
        else if (arg == "--fault-drop")
            opt.fault.dropRate = parseRate(arg, next());
        else if (arg == "--fault-dup")
            opt.fault.duplicateRate = parseRate(arg, next());
        else if (arg == "--fault-seed")
            opt.fault.seed = parseCount(arg, next(), 0);
        else if (arg == "--confirm-k")
            opt.recovery.confirmationRuns =
                static_cast<unsigned>(parseCount(arg, next()));
        else if (arg == "--crash-retries")
            opt.recovery.crashRetries =
                static_cast<unsigned>(parseCount(arg, next()));
        else if (arg == "--threads")
            opt.threads =
                static_cast<unsigned>(parseCount(arg, next()));
        else if (arg == "--batch")
            opt.batch =
                static_cast<std::uint32_t>(parseCount(arg, next(), 0));
        else if (arg == "--shard-size")
            opt.shardSize =
                static_cast<std::size_t>(parseCount(arg, next()));
        else if (arg == "--no-stream-check")
            opt.streamCheck = false;
        else if (arg == "--stream-window")
            opt.streamWindow =
                static_cast<std::size_t>(parseCount(arg, next()));
        else if (arg == "--journal") {
            opt.journalPath = next();
            if (opt.journalPath.empty())
                throw ConfigError("--journal expects a non-empty path");
        } else if (arg == "--resume")
            opt.resume = true;
        else if (arg == "--test-timeout-ms")
            opt.testTimeoutMs = parseCount(arg, next());
        else if (arg == "--error-budget")
            opt.errorBudget =
                static_cast<unsigned>(parseCount(arg, next()));
        else if (arg == "--stall-after")
            opt.stallAfterSteps = parseCount(arg, next());
        else if (arg == "--sandbox")
            opt.sandbox = true;
        else if (arg == "--sandbox-mem-mb")
            opt.sandboxMemMb = parseCount(arg, next());
        else if (arg == "--sandbox-cpu-s")
            opt.sandboxCpuS = parseCount(arg, next());
        else if (arg == "--distributed")
            opt.distributed =
                static_cast<unsigned>(parseCount(arg, next()));
        else if (arg == "--fabric-key-file") {
            opt.fabricKeyFile = next();
            if (opt.fabricKeyFile.empty())
                throw ConfigError(
                    "--fabric-key-file expects a non-empty path");
        } else if (arg == "--audit-rate") {
            opt.auditRate = parseRate(arg, next());
            if (!(opt.auditRate >= 0.0 && opt.auditRate <= 1.0))
                throw ConfigError(
                    "--audit-rate expects a fraction in [0, 1]");
        }
        else if (arg == "--die-after")
            opt.dieAfterRuns = parseCount(arg, next());
        else if (arg == "--leak-after")
            opt.leakAfterRuns = parseCount(arg, next());
        else if (arg == "--verbose")
            opt.verbose = true;
        else if (arg == "--profile")
            opt.profile = true;
        else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            throw ConfigError("unknown option: " + arg);
        }
    }
    if (opt.resume && opt.journalPath.empty())
        throw ConfigError(
            "--resume needs a journal (--journal PATH or MTC_JOURNAL)");
    if ((opt.dieAfterRuns || opt.leakAfterRuns) &&
        opt.platform == "mesi")
        throw ConfigError("--die-after/--leak-after are operational-"
                          "executor drills; pick a non-mesi platform");
    if (opt.distributed && opt.sandbox)
        throw ConfigError("--distributed and --sandbox are mutually "
                          "exclusive execution modes");
    if (opt.distributed && (opt.dieAfterRuns || opt.leakAfterRuns))
        throw ConfigError(
            "--die-after/--leak-after are sandbox containment drills; "
            "a distributed worker would re-arm them on every "
            "reassignment (use mtc_coordinator --drill-exit-after for "
            "the fabric's death drill)");
    return opt;
}

FlowConfig
makeFlow(const Options &opt, const TestConfig &cfg)
{
    FlowConfig flow;
    flow.iterations = opt.iterations;
    flow.runConventional = false;
    flow.fault = opt.fault;
    flow.recovery = opt.recovery;
    flow.threads = opt.threads;
    flow.batch = opt.batch;
    flow.shardSize = opt.shardSize;
    flow.streamCheck = opt.streamCheck;
    flow.streamWindow = opt.streamWindow;
    flow.profile = opt.profile;

    const BugKind bug = parseBug(opt.bug);
    if (opt.platform == "mesi") {
        CoherentConfig coh = gem5LikeConfig();
        if (opt.model)
            coh.model = *opt.model;
        else
            coh.model = defaultModel(cfg.isa);
        coh.bug = bug;
        coh.bugProbability = opt.bugProb;
        coh.cacheLines = opt.cacheLines;
        coh.stallAfterSteps = opt.stallAfterSteps;
        flow.coherent = coh;
        return flow;
    }

    if (opt.platform == "uniform") {
        flow.exec.policy = SchedulingPolicy::UniformRandom;
        flow.exec.model = opt.model ? *opt.model : defaultModel(cfg.isa);
        flow.exec.reorderWindow =
            flow.exec.model == MemoryModel::SC ? 1 : 8;
    } else if (opt.platform == "linux") {
        flow.exec = osConfig(cfg.isa);
        if (opt.model)
            flow.exec.model = *opt.model;
    } else if (opt.platform == "timed") {
        flow.exec = bareMetalConfig(cfg.isa);
        if (opt.model)
            flow.exec.model = *opt.model;
    } else {
        throw ConfigError("unknown platform: " + opt.platform);
    }
    flow.exec.bug = bug;
    flow.exec.bugProbability = opt.bugProb;
    flow.exec.timing.cacheLines = opt.cacheLines;
    flow.exec.stallAfterSteps = opt.stallAfterSteps;
    flow.exec.dieAfterRuns = opt.dieAfterRuns;
    flow.exec.leakAfterRuns = opt.leakAfterRuns;
    return flow;
}

/**
 * Journal identity of a CLI campaign: every option that shapes the
 * deterministic result stream. Threads, the batch width, the streaming
 * pipeline knobs (--no-stream-check / --stream-window), the watchdog
 * deadline and the error budget are excluded on purpose — a resume may
 * legitimately use different operational knobs (more cores, a longer
 * deadline, the barrier pipeline for an A/B run).
 */
CampaignJournal::Identity
cliIdentity(const Options &opt, const TestConfig &cfg)
{
    ByteWriter w;
    w.str(cfg.name());
    w.u32(opt.tests);
    w.u64(opt.iterations);
    w.u64(opt.seed);
    w.str(opt.platform);
    w.u8(opt.model ? 1 : 0);
    if (opt.model)
        w.u8(static_cast<std::uint8_t>(*opt.model));
    w.str(opt.bug);
    w.f64(opt.bugProb);
    w.u32(opt.cacheLines);
    w.f64(opt.fault.bitFlipRate);
    w.f64(opt.fault.tornStoreRate);
    w.f64(opt.fault.truncationRate);
    w.f64(opt.fault.dropRate);
    w.f64(opt.fault.duplicateRate);
    w.u64(opt.fault.seed);
    w.u32(opt.recovery.confirmationRuns);
    w.u64(opt.recovery.confirmationIterations);
    w.u32(opt.recovery.crashRetries);
    w.u64(opt.shardSize);
    w.u64(opt.stallAfterSteps);
    // The hard-failure drills change what the flow computes (a killed
    // run is re-attempted under the crash budget), so they are part of
    // the identity; the sandbox mode itself and its rlimit budgets are
    // operational — a journal written in-process resumes sandboxed and
    // vice versa.
    w.u64(opt.dieAfterRuns);
    w.u64(opt.leakAfterRuns);

    CampaignJournal::Identity identity;
    identity.digest = fnv1a64(w.bytes().data(), w.bytes().size());
    identity.description = "config=" + cfg.name() +
        " platform=" + opt.platform +
        " tests=" + std::to_string(opt.tests) +
        " iterations=" + std::to_string(opt.iterations) +
        " seed=" + std::to_string(opt.seed);
    return identity;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        const Options opt = parseArgs(argc, argv);
        const TestConfig cfg = parseConfigName(opt.config);

        std::cout << "MTraceCheck campaign: " << cfg.name() << " on "
                  << opt.platform << " platform, " << opt.tests
                  << " tests x " << opt.iterations << " iterations\n";

        FlowConfig flow_cfg = makeFlow(opt, cfg);
        const MemoryModel model = flow_cfg.coherent
            ? flow_cfg.coherent->model
            : flow_cfg.exec.model;
        std::cout << "checked model: " << modelName(model) << "\n\n";

        TablePrinter table({"test", "unique sigs", "bad sigs",
                            "assertions", "crash", "check (ms)"});

        // Pre-derive every test's seeds from the canonical serial
        // sequence (two draws per test, in test order — exactly the
        // draws the pre-journal runner made), so a resumed campaign
        // regenerates the very same programs for the units it still
        // has to run.
        Rng seeder(opt.seed);
        std::vector<std::pair<std::uint64_t, std::uint64_t>> seeds;
        seeds.reserve(opt.tests);
        for (unsigned t = 0; t < opt.tests; ++t) {
            const std::uint64_t gen_seed = seeder();
            const std::uint64_t flow_seed = seeder();
            seeds.emplace_back(gen_seed, flow_seed);
        }

        std::unique_ptr<CampaignJournal> journal;
        if (!opt.journalPath.empty()) {
            journal = std::make_unique<CampaignJournal>(
                opt.journalPath, cliIdentity(opt, cfg), opt.resume);
            if (opt.resume) {
                std::cout << "resume: " << journal->replayedUnits()
                          << " completed tests replayed from "
                          << opt.journalPath;
                if (journal->droppedBytes())
                    std::cout << " (" << journal->droppedBytes()
                              << " torn tail bytes discarded)";
                std::cout << "\n";
            }
        }
        // Fork-before-threads: the sandboxed and distributed parents
        // fork their fleets before any thread exists, so the watchdog
        // lives only in the serial path (fleet children build their
        // own post-fork).
        std::unique_ptr<Watchdog> watchdog;
        if (opt.testTimeoutMs && !opt.sandbox && !opt.distributed)
            watchdog = std::make_unique<Watchdog>();

        std::uint64_t total_unique = 0, total_bad = 0, total_assert = 0;
        std::uint64_t quarantined = 0, transient = 0, confirmed = 0;
        std::uint64_t injected_events = 0;
        unsigned crashes = 0, flagged = 0;
        unsigned hung_tests = 0, skipped_tests = 0;
        unsigned error_events = 0;
        bool tripped = false;
        std::string witness, fault_note;
        PhaseBreakdown profile;

        // Phase 1 fills per-test slots (serial in-process, or fanned
        // across the sandbox fleet); phase 2 folds the slots in test
        // order so the printed summary is bit-identical either way.
        struct CliOutcome
        {
            FlowResult r;
            bool ran = false;
            bool hung = false;
        };
        std::vector<CliOutcome> outcomes(opt.tests);

        auto charge_breaker = [&](const FlowResult &r, bool hung) {
            if (hung) {
                ++error_events;
                return;
            }
            error_events += static_cast<unsigned>(
                (r.platformCrashes ? 1 : 0) +
                r.fault.quarantinedCount());
        };
        auto check_replay_seeds = [&](const UnitRecord &replayed,
                                      unsigned t) {
            if (replayed.genSeed != seeds[t].first ||
                replayed.flowSeed != seeds[t].second) {
                throw ConfigError(
                    "--resume: journal record for test " +
                    std::to_string(t) +
                    " carries different seeds than this campaign "
                    "derives — the journal belongs to another run");
            }
        };
        auto blank_record = [&](unsigned t) {
            UnitRecord record;
            record.configName = cfg.name();
            record.testIndex = t;
            record.genSeed = seeds[t].first;
            record.flowSeed = seeds[t].second;
            return record;
        };

        if (opt.distributed) {
            // Loopback fabric: the coordinator binds an ephemeral
            // localhost port, the fleet is forked from this (still
            // single-threaded) process, and each child serves units
            // over TCP exactly as an external mtc_worker would. A
            // worker death is a fabric event, not a platform crash:
            // the unit is reassigned and re-executed from the same
            // pre-derived seeds, so nothing is charged and the
            // summary stays bit-identical to the serial run.
            FabricConfig fabric;
            fabric.stallTimeoutMs = 60000; // dead fleet fails, not hangs
            if (!opt.fabricKeyFile.empty())
                fabric.key = loadFabricKey(opt.fabricKeyFile);
            fabric.netFault = opt.netFault;
            fabric.auditRate = opt.auditRate;
            std::uint64_t audit_seed_src =
                opt.seed ^ 0xa5a5a5a55a5a5a5aull;
            fabric.auditSeed = splitMix64(audit_seed_src);
            Coordinator coordinator(fabric, {});

            const FlowConfig flow_base = flow_cfg;
            // One unit, executed to an encoded UnitRecord. Shared by
            // the forked workers and the parent-side audit arbiter so
            // the two can never drift.
            const auto execute_unit =
                [&](unsigned t, std::unique_ptr<Watchdog> &wd)
                -> std::vector<std::uint8_t> {
                FlowConfig fc = flow_base;
                fc.seed = seeds[t].second;
                if (opt.testTimeoutMs && !wd)
                    wd = std::make_unique<Watchdog>();
                setCrashContext(
                    cfg.name() + "#" + std::to_string(t),
                    seeds[t].first);
                UnitRecord record = blank_record(t);
                CancellationToken token;
                std::optional<Watchdog::Guard> deadline;
                if (wd) {
                    fc.cancel = &token;
                    deadline.emplace(wd->watch(
                        token,
                        std::chrono::milliseconds(opt.testTimeoutMs)));
                }
                try {
                    const TestProgram program =
                        generateTest(cfg, seeds[t].first);
                    ValidationFlow flow(fc);
                    record.outcome.result = flow.runTest(program);
                    record.outcome.ok = true;
                    record.outcome.status = TestStatus::Ok;
                } catch (const TestHungError &err) {
                    record.outcome.ok = false;
                    record.outcome.status = TestStatus::Hung;
                    record.outcome.hungAttempts = 1;
                    std::cerr << "mtc_validate: test " << t
                              << " hung: " << err.what() << "\n";
                }
                clearCrashContext();
                record.outcome.result.executions.clear();
                return encodeUnitRecord(record);
            };
            auto fork_worker = [&](unsigned index) -> pid_t {
                const pid_t pid = ::fork();
                if (pid < 0)
                    throw DistError(
                        std::string("fabric fork failed: ") +
                        std::strerror(errno));
                if (pid > 0)
                    return pid;
#ifdef __linux__
                ::prctl(PR_SET_PDEATHSIG, SIGKILL);
                if (::getppid() == 1)
                    ::_exit(70); // parent raced away already
#endif
                // See Coordinator::listenerFd: an inherited copy of
                // the listener would outlive its shutdown and queue
                // late connects forever instead of refusing them.
                ::close(coordinator.listenerFd());
                try {
                    WorkerClientConfig wc;
                    wc.port = coordinator.port();
                    wc.name = "loop-" + std::to_string(index);
                    wc.heartbeatMs = 500;
                    // Chaos drills kill sessions on purpose; see
                    // forkCampaignWorker for the same budget split.
                    wc.maxReconnects = opt.netFault.any() ? 25 : 3;
                    wc.backoffBaseMs = 50;
                    wc.backoffCapMs = 400;
                    wc.key = fabric.key;
                    wc.netFault = opt.netFault;
                    std::unique_ptr<Watchdog> child_watchdog;
                    runWorkerClient(
                        wc,
                        [](const std::vector<std::uint8_t> &) {
                            // Single-config CLI campaign: the unit
                            // request carries everything; the spec
                            // blob is unused.
                        },
                        [&](std::uint64_t,
                            const std::vector<std::uint8_t> &request)
                            -> std::vector<std::uint8_t> {
                            ByteReader reader(request);
                            const unsigned t = reader.u32();
                            return execute_unit(t, child_watchdog);
                        });
                    ::_exit(0);
                } catch (...) {
                    ::_exit(70);
                }
            };

            std::vector<pid_t> fleet;
            fleet.reserve(opt.distributed);
            for (unsigned i = 0; i < opt.distributed; ++i)
                fleet.push_back(fork_worker(i));
            auto reap_fleet = [&fleet](bool kill_first) {
                for (const pid_t pid : fleet) {
                    if (kill_first)
                        ::kill(pid, SIGKILL);
                    try {
                        waitChild(pid);
                    } catch (const ProcessError &) {
                    }
                }
                fleet.clear();
            };

            const Coordinator::RequestFn request_fn =
                [&](std::size_t u)
                -> std::optional<std::vector<std::uint8_t>> {
                const unsigned t = static_cast<unsigned>(u);
                if (opt.errorBudget &&
                    error_events >= opt.errorBudget) {
                    tripped = true;
                    ++skipped_tests;
                    return std::nullopt;
                }
                const UnitRecord *replayed =
                    journal ? journal->find(cfg.name(), t) : nullptr;
                if (replayed) {
                    check_replay_seeds(*replayed, t);
                    outcomes[t].r = replayed->outcome.result;
                    outcomes[t].hung =
                        replayed->outcome.status == TestStatus::Hung;
                    outcomes[t].ran = true;
                    charge_breaker(outcomes[t].r, outcomes[t].hung);
                    return std::nullopt;
                }
                ByteWriter w;
                w.u32(t);
                return w.bytes();
            };

            const Coordinator::ResultFn result_fn =
                [&](std::size_t u,
                    const std::vector<std::uint8_t> &payload) {
                const unsigned t = static_cast<unsigned>(u);
                UnitRecord record = decodeUnitRecord(payload);
                if (record.configName != cfg.name() ||
                    record.testIndex != t ||
                    record.genSeed != seeds[t].first ||
                    record.flowSeed != seeds[t].second) {
                    throw DistError(
                        "fabric: worker response does not match "
                        "leased test " + std::to_string(t));
                }
                outcomes[t].r = record.outcome.result;
                outcomes[t].hung =
                    record.outcome.status == TestStatus::Hung;
                outcomes[t].ran = true;
                if (journal)
                    journal->append(record);
                charge_breaker(outcomes[t].r, outcomes[t].hung);
            };

            // See runUnitsDistributed: generous by design — a
            // reassignment costs one deterministic re-execution, an
            // abandoned test costs a campaign hole.
            constexpr unsigned kMaxUnitLosses = 8;
            const Coordinator::LossFn loss_fn =
                [&](std::size_t u, unsigned losses,
                    const std::string &why) -> bool {
                const unsigned t = static_cast<unsigned>(u);
                if (losses <= kMaxUnitLosses) {
                    std::cerr << "mtc_validate: test " << t
                              << " lost its worker (" << why
                              << "); reassigning\n";
                    return true;
                }
                UnitRecord record = blank_record(t);
                record.outcome.ok = false;
                record.outcome.status = TestStatus::Failed;
                record.outcome.result.fault.note =
                    "fabric: abandoned after " +
                    std::to_string(losses) + " worker losses (" + why +
                    ")";
                outcomes[t].r = record.outcome.result;
                outcomes[t].hung = false;
                outcomes[t].ran = true;
                if (journal)
                    journal->append(record);
                charge_breaker(outcomes[t].r, false);
                return false;
            };

            // Byzantine-audit hooks: digest compares are payload-
            // level; the arbiter re-executes the test in this process
            // (watchdog built lazily, after every fork above).
            std::unique_ptr<Watchdog> arbiter_watchdog;
            Coordinator::AuditHooks hooks;
            hooks.digest =
                [](std::size_t,
                   const std::vector<std::uint8_t> &payload) {
                return unitRecordDigest(payload);
            };
            hooks.arbiter =
                [&](std::size_t u) -> std::vector<std::uint8_t> {
                return execute_unit(static_cast<unsigned>(u),
                                    arbiter_watchdog);
            };

            try {
                coordinator.run(opt.tests, request_fn, result_fn,
                                loss_fn, hooks);
            } catch (...) {
                reap_fleet(true);
                throw;
            }
            reap_fleet(false);

            const FabricStats &fs = coordinator.stats();
            std::cout << "distributed: " << opt.distributed
                      << " loopback workers, " << fs.workersLost
                      << " workers lost, " << fs.unitsReassigned
                      << " units reassigned\n";
            if (opt.auditRate > 0.0) {
                const ByzantineStats &b = fs.byzantine;
                std::cout << "fabric byzantine: audits="
                          << b.auditsScheduled
                          << " passed=" << b.auditsPassed
                          << " mismatches=" << b.auditMismatches
                          << " skipped=" << b.auditsSkipped
                          << " arbitrations=" << b.localArbitrations
                          << " invalidated=" << b.resultsInvalidated
                          << " quarantined=";
                if (b.quarantined.empty()) {
                    std::cout << "-";
                } else {
                    for (std::size_t i = 0; i < b.quarantined.size();
                         ++i)
                        std::cout << (i ? "," : "")
                                  << b.quarantined[i];
                }
                std::cout << "\n";
            }
        } else if (opt.sandbox) {
            SandboxConfig sandbox;
            sandbox.workers = ThreadPool::resolveThreads(opt.threads);
            sandbox.memLimitMb = opt.sandboxMemMb;
            sandbox.cpuLimitS = opt.sandboxCpuS;
            // One attempt per test at this level, so the documented
            // 2x-timeout reclaim bound is simply 2 x the deadline.
            if (opt.testTimeoutMs)
                sandbox.hardDeadlineMs = 2 * opt.testTimeoutMs;

            // Child-side watchdog, created lazily after the fork.
            struct ChildRuntime
            {
                std::unique_ptr<Watchdog> watchdog;
            };
            auto child_runtime = std::make_shared<ChildRuntime>();
            const FlowConfig flow_base = flow_cfg;

            SandboxPool::WorkerFn worker_fn = [&, child_runtime](
                const std::vector<std::uint8_t> &request,
                const WorkerEnv &env) -> std::vector<std::uint8_t> {
                ByteReader reader(request);
                const unsigned t = reader.u32();

                FlowConfig fc = flow_base;
                fc.seed = seeds[t].second;
                if (env.workerIndex != 0 || env.generation != 0) {
                    // Hard-failure drills arm only the initial
                    // fleet's first worker: one observable
                    // containment event, then the retry completes on
                    // an unarmed respawn.
                    fc.exec.dieAfterRuns = 0;
                    fc.exec.leakAfterRuns = 0;
                }
                if (opt.testTimeoutMs && !child_runtime->watchdog)
                    child_runtime->watchdog =
                        std::make_unique<Watchdog>();

                setCrashContext(cfg.name() + "#" + std::to_string(t),
                                seeds[t].first);
                UnitRecord record = blank_record(t);
                CancellationToken token;
                std::optional<Watchdog::Guard> deadline;
                if (child_runtime->watchdog) {
                    fc.cancel = &token;
                    deadline.emplace(child_runtime->watchdog->watch(
                        token,
                        std::chrono::milliseconds(opt.testTimeoutMs)));
                }
                try {
                    const TestProgram program =
                        generateTest(cfg, seeds[t].first);
                    ValidationFlow flow(fc);
                    record.outcome.result = flow.runTest(program);
                    record.outcome.ok = true;
                    record.outcome.status = TestStatus::Ok;
                } catch (const TestHungError &err) {
                    record.outcome.ok = false;
                    record.outcome.status = TestStatus::Hung;
                    record.outcome.hungAttempts = 1;
                    std::cerr << "mtc_validate: test " << t
                              << " hung: " << err.what() << "\n";
                }
                clearCrashContext();
                record.outcome.result.executions.clear();
                return encodeUnitRecord(record);
            };

            SandboxPool pool(sandbox, worker_fn);

            std::vector<unsigned> worker_deaths(opt.tests, 0);
            std::vector<std::string> death_notes(opt.tests);
            auto note_death = [&](unsigned t, const std::string &what) {
                if (!death_notes[t].empty())
                    death_notes[t] += "; ";
                death_notes[t] += what;
            };

            const SandboxPool::RequestFn request_fn =
                [&](std::size_t u)
                -> std::optional<std::vector<std::uint8_t>> {
                const unsigned t = static_cast<unsigned>(u);
                if (opt.errorBudget &&
                    error_events >= opt.errorBudget) {
                    tripped = true;
                    ++skipped_tests;
                    return std::nullopt;
                }
                const UnitRecord *replayed =
                    journal ? journal->find(cfg.name(), t) : nullptr;
                if (replayed) {
                    check_replay_seeds(*replayed, t);
                    outcomes[t].r = replayed->outcome.result;
                    outcomes[t].hung =
                        replayed->outcome.status == TestStatus::Hung;
                    outcomes[t].ran = true;
                    charge_breaker(outcomes[t].r, outcomes[t].hung);
                    return std::nullopt;
                }
                ByteWriter w;
                w.u32(t);
                return w.bytes();
            };

            const SandboxPool::ResultFn result_fn =
                [&](std::size_t u,
                    const std::vector<std::uint8_t> &payload) {
                const unsigned t = static_cast<unsigned>(u);
                UnitRecord record = decodeUnitRecord(payload);
                if (record.configName != cfg.name() ||
                    record.testIndex != t ||
                    record.genSeed != seeds[t].first ||
                    record.flowSeed != seeds[t].second) {
                    throw SandboxError(
                        "sandbox: worker response does not match "
                        "dispatched test " + std::to_string(t));
                }
                if (worker_deaths[t]) {
                    // Deaths consumed on the way to this success are
                    // charged exactly like in-flow platform crashes.
                    FlowResult &r = record.outcome.result;
                    r.platformCrashes += worker_deaths[t];
                    r.fault.crashRetries += worker_deaths[t];
                    if (!r.fault.note.empty())
                        r.fault.note += "; ";
                    r.fault.note += "sandbox: " + death_notes[t];
                }
                outcomes[t].r = record.outcome.result;
                outcomes[t].hung =
                    record.outcome.status == TestStatus::Hung;
                outcomes[t].ran = true;
                if (journal)
                    journal->append(record);
                charge_breaker(outcomes[t].r, outcomes[t].hung);
            };

            const SandboxPool::LossFn loss_fn =
                [&](std::size_t u, const WorkerLoss &loss) -> bool {
                const unsigned t = static_cast<unsigned>(u);
                if (loss.kind == WorkerLossKind::HardKill) {
                    std::cerr << "mtc_validate: test " << t
                              << " hung non-cooperatively; worker "
                                 "reclaimed by SIGKILL\n";
                    UnitRecord record = blank_record(t);
                    record.outcome.ok = false;
                    record.outcome.status = TestStatus::Hung;
                    record.outcome.hungAttempts = 1;
                    record.outcome.result.fault.note =
                        "sandbox: " + loss.describe();
                    outcomes[t].r = record.outcome.result;
                    outcomes[t].hung = true;
                    outcomes[t].ran = true;
                    if (journal)
                        journal->append(record);
                    charge_breaker(outcomes[t].r, true);
                    return false;
                }
                ++worker_deaths[t];
                note_death(t, loss.describe());
                std::cerr << "mtc_validate: test " << t
                          << " lost its worker (death "
                          << worker_deaths[t] << "): "
                          << loss.describe() << "\n";
                if (worker_deaths[t] <= opt.recovery.crashRetries)
                    return true; // retry on the respawned worker
                UnitRecord record = blank_record(t);
                record.outcome.ok = false;
                record.outcome.status = TestStatus::Failed;
                record.outcome.result.platformCrashes =
                    worker_deaths[t];
                record.outcome.result.fault.crashRetries =
                    opt.recovery.crashRetries;
                record.outcome.result.fault.note =
                    "sandbox: " + death_notes[t];
                outcomes[t].r = record.outcome.result;
                outcomes[t].hung = false;
                outcomes[t].ran = true;
                if (journal)
                    journal->append(record);
                charge_breaker(outcomes[t].r, false);
                return false;
            };

            pool.run(opt.tests, request_fn, result_fn, loss_fn);

            std::uint64_t contained = 0;
            for (unsigned deaths : worker_deaths)
                contained += deaths;
            std::cout << "sandbox: " << sandbox.workers
                      << " workers, " << pool.respawns()
                      << " worker respawns, " << contained
                      << " contained worker crashes\n";
        } else {
            for (unsigned t = 0; t < opt.tests; ++t) {
                // Circuit breaker: a platform this unhealthy will not
                // get healthier on the remaining tests — stop burning
                // time.
                if (opt.errorBudget &&
                    error_events >= opt.errorBudget) {
                    tripped = true;
                    skipped_tests = opt.tests - t;
                    break;
                }

                FlowResult r;
                bool hung = false;
                const UnitRecord *replayed = journal
                    ? journal->find(cfg.name(), t)
                    : nullptr;
                if (replayed) {
                    check_replay_seeds(*replayed, t);
                    r = replayed->outcome.result;
                    hung = replayed->outcome.status == TestStatus::Hung;
                } else {
                    const TestProgram program =
                        generateTest(cfg, seeds[t].first);
                    flow_cfg.seed = seeds[t].second;
                    CancellationToken token;
                    std::optional<Watchdog::Guard> deadline;
                    if (watchdog) {
                        flow_cfg.cancel = &token;
                        deadline.emplace(watchdog->watch(
                            token,
                            std::chrono::milliseconds(
                                opt.testTimeoutMs)));
                    }
                    try {
                        ValidationFlow flow(flow_cfg);
                        r = flow.runTest(program);
                    } catch (const TestHungError &err) {
                        hung = true;
                        std::cerr << "mtc_validate: test " << t
                                  << " hung: " << err.what() << "\n";
                    }
                    flow_cfg.cancel = nullptr;
                    if (journal) {
                        UnitRecord record = blank_record(t);
                        record.outcome.result = r;
                        record.outcome.result.executions.clear();
                        record.outcome.ok = !hung;
                        record.outcome.status =
                            hung ? TestStatus::Hung : TestStatus::Ok;
                        if (hung)
                            record.outcome.hungAttempts = 1;
                        journal->append(record);
                    }
                }

                outcomes[t].r = std::move(r);
                outcomes[t].hung = hung;
                outcomes[t].ran = true;
                charge_breaker(outcomes[t].r, hung);
            }
        }

        // Phase 2: fold the slots in test order (identical between
        // modes and worker counts by construction).
        for (unsigned t = 0; t < opt.tests; ++t) {
            const CliOutcome &o = outcomes[t];
            if (!o.ran)
                continue;
            if (o.hung) {
                ++hung_tests;
                continue;
            }
            const FlowResult &r = o.r;
            total_unique += r.uniqueSignatures;
            total_bad += r.violatingSignatures;
            total_assert += r.assertionFailures;
            quarantined += r.fault.quarantinedCount();
            transient += r.fault.transientViolations;
            confirmed += r.fault.confirmedViolations;
            injected_events += r.fault.injected.totalEvents();
            crashes += r.platformCrashes ? 1 : 0;
            flagged += r.anyViolation() ? 1 : 0;
            if (witness.empty() && !r.violationWitness.empty())
                witness = r.violationWitness;
            if (fault_note.empty() && !r.fault.note.empty())
                fault_note = r.fault.note;
            if (opt.profile)
                profile.merge(r.profile);

            if (opt.verbose) {
                table.addRow({std::to_string(t),
                              TablePrinter::fmt(r.uniqueSignatures),
                              TablePrinter::fmt(r.violatingSignatures),
                              TablePrinter::fmt(r.assertionFailures),
                              r.platformCrashes ? "yes" : "no",
                              TablePrinter::fmt(r.collectiveMs, 3)});
            }
        }

        if (opt.verbose)
            table.print(std::cout);

        std::cout << "\ncampaign summary: " << flagged << "/"
                  << opt.tests << " tests flagged, " << total_bad
                  << " invalid signatures, " << total_assert
                  << " runtime assertions, " << crashes
                  << " platform crashes, " << total_unique
                  << " unique interleavings total\n";

        if (hung_tests) {
            std::cout << "watchdog: " << hung_tests
                      << " tests hung and were reclaimed (deadline "
                      << opt.testTimeoutMs << " ms)\n";
        }
        if (tripped) {
            std::cout << "circuit breaker: tripped after "
                      << error_events << " error events (budget "
                      << opt.errorBudget << "), " << skipped_tests
                      << " tests skipped\n";
        }

        if (opt.fault.enabled()) {
            std::cout << "fault summary: " << injected_events
                      << " injected readout faults, " << quarantined
                      << " signatures quarantined, " << confirmed
                      << " violations confirmed, " << transient
                      << " reclassified as transient corruption\n";
            if (!fault_note.empty())
                std::cout << "note: " << fault_note << "\n";
        }

        if (opt.profile) {
            std::cout << "\nhot-path profile (campaign totals):\n";
            TablePrinter phases(
                {"phase", "time (ms)", "share", "calls", "ms/call"});
            const double sum_ms =
                static_cast<double>(profile.sumNs()) / 1e6;
            for (std::size_t p = 0; p < kPhaseCount; ++p) {
                const Phase phase = static_cast<Phase>(p);
                const double ms =
                    static_cast<double>(profile.phaseNs(phase)) / 1e6;
                const double share =
                    sum_ms > 0.0 ? 100.0 * ms / sum_ms : 0.0;
                const std::uint64_t calls = profile.phaseCount(phase);
                phases.addRow({phaseName(phase),
                               TablePrinter::fmt(ms, 3),
                               TablePrinter::fmt(share, 1) + "%",
                               TablePrinter::fmt(calls),
                               calls ? TablePrinter::fmt(
                                           ms / static_cast<double>(
                                                    calls),
                                           6)
                                     : "-"});
            }
            phases.print(std::cout);
            std::cout << "phases account for "
                      << TablePrinter::fmt(100.0 * profile.coverage(), 1)
                      << "% of "
                      << TablePrinter::fmt(
                             static_cast<double>(profile.totalNs) / 1e6,
                             3)
                      << " ms total flow wall-clock\n";
        }

        if (!witness.empty())
            std::cout << "\nfirst violation witness:\n" << witness;

        // Distinct exit codes: a regression farm must tell "the DUT
        // violated its MCM" from "the readout path glitched" from
        // "the platform wedged" from "the campaign gave up early".
        const bool violation = total_bad || total_assert;
        if (violation)
            return kExitViolation;
        if (tripped)
            return kExitBreakerTripped;
        if (hung_tests)
            return kExitHang;
        if (crashes)
            return kExitPlatformCrash;
        if (quarantined || transient)
            return kExitCorruptionOnly;
        return kExitClean;
    } catch (const Error &err) {
        std::cerr << "mtc_validate: " << err.what() << "\n";
        return kExitConfigError;
    } catch (const std::exception &err) {
        // Malformed numeric arguments (std::stoul and friends) and
        // other standard-library failures are configuration errors
        // too, not crashes.
        std::cerr << "mtc_validate: " << err.what() << "\n";
        return kExitConfigError;
    }
}
