/**
 * @file
 * mtc_check — standalone offline trace checker.
 *
 * Ingests a trace dumped by a campaign run (`mtc_coordinator
 * --dump-trace` / MTC_DUMP_TRACE), re-derives every test program from
 * the spec embedded in the trace header, re-runs the streaming
 * collective checker over each recorded signature stream, and prints
 * the same deterministic "campaign summary:" / "campaign digest:"
 * block as the producing run — byte-identical when the trace is
 * intact (the CI smoke diffs the two).
 *
 * Usage:
 *   mtc_check [options] TRACE
 *     --strict            abort on the first classified trace fault
 *                         instead of degrading the summary
 *     --checkpoint PATH   append per-unit progress records here
 *     --resume            replay verdicts from --checkpoint whose
 *                         payload digests still match the trace
 *     --threads N         checker worker threads (bit-identical) [1]
 *     --no-stream         barrier pipeline instead of streaming
 *     --stream-window N   streaming decode→check window [64]
 *     --help
 *
 * Exit status extends mtc_validate/mtc_coordinator:
 *   0 clean, 1 config error, 2 confirmed violation, 3 corruption
 *   only, 4 failed/abandoned units, 5 hang, 6 breaker tripped,
 *   7 trace fault (torn/corrupt/version-skew/fingerprint-mismatch).
 *   A violation outranks a trace fault; a trace fault outranks every
 *   lesser verdict.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/campaign_report.h"
#include "harness/exit_codes.h"
#include "harness/trace_check.h"

using namespace mtc;

namespace
{

void
usage()
{
    std::cout <<
        "mtc_check: offline trace checker\n"
        "  mtc_check [options] TRACE\n"
        "  --strict          abort on the first classified trace\n"
        "                    fault instead of degrading the summary\n"
        "  --checkpoint PATH append per-unit progress records (a\n"
        "                    trace-format file) so a killed check\n"
        "                    resumes\n"
        "  --resume          replay verdicts from --checkpoint whose\n"
        "                    payload digests still match the trace;\n"
        "                    stale entries are re-checked\n"
        "  --threads N       checker worker threads; results are\n"
        "                    bit-identical at any value [1]\n"
        "  --no-stream       barrier decode-all/check-all pipeline\n"
        "                    instead of streaming (A/B baseline)\n"
        "  --stream-window N streaming decode->check window [64]\n"
        "exit codes: 0 clean, 1 config error, 2 confirmed violation,\n"
        "            3 corruption only, 4 failed/abandoned units,\n"
        "            5 hang, 6 circuit breaker tripped, 7 trace fault\n";
}

std::uint64_t
parseCount(const std::string &flag, const std::string &text)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t value = std::stoull(text, &pos);
        if (pos == text.size() && text[0] != '-')
            return value;
    } catch (const std::exception &) {
    }
    throw ConfigError(flag + " expects an unsigned integer, got \"" +
                      text + "\"");
}

TraceCheckOptions
parseArgs(int argc, char **argv)
{
    TraceCheckOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                throw ConfigError("missing value after " + arg);
            return argv[i];
        };
        if (arg == "--strict")
            opt.strict = true;
        else if (arg == "--checkpoint") {
            opt.checkpointPath = next();
            if (opt.checkpointPath.empty())
                throw ConfigError(
                    "--checkpoint expects a non-empty path");
        } else if (arg == "--resume")
            opt.resume = true;
        else if (arg == "--threads")
            opt.threads =
                static_cast<unsigned>(parseCount(arg, next()));
        else if (arg == "--no-stream")
            opt.streamCheck = false;
        else if (arg == "--stream-window")
            opt.streamWindow =
                static_cast<std::size_t>(parseCount(arg, next()));
        else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            throw ConfigError("unknown option: " + arg);
        } else if (opt.tracePath.empty()) {
            opt.tracePath = arg;
        } else {
            throw ConfigError("more than one trace path given");
        }
    }
    if (opt.tracePath.empty())
        throw ConfigError("no trace path given (see --help)");
    if (opt.resume && opt.checkpointPath.empty())
        throw ConfigError("--resume needs --checkpoint PATH");
    return opt;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        const TraceCheckOptions opt = parseArgs(argc, argv);
        const TraceCheckReport report = checkTrace(opt);

        std::cout << "MTraceCheck offline check: " << opt.tracePath
                  << " (" << report.identityDescription << ")\n\n";

        const CampaignTotals totals = printCampaignReport(
            std::cout, std::cerr, "mtc_check", report.summaries);

        // Operational ingest report. Deliberately NOT prefixed
        // "campaign": the CI smoke byte-compares `grep '^campaign'`
        // against the producing run, and ingest bookkeeping is not
        // part of that deterministic contract.
        std::cout << "trace check: units=" << report.unitsInTrace
                  << " verified=" << report.unitsVerified
                  << " adopted=" << report.unitsAdopted
                  << " replayed=" << report.unitsReplayed
                  << " quarantined=" << report.quarantinedRecords
                  << " missing=" << report.missingUnits
                  << " duplicates=" << report.duplicateUnits
                  << " torn-bytes=" << report.tornBytesDropped
                  << " unknown-skipped=" << report.unknownRecordsSkipped
                  << "\n";
        for (const TraceFault &f : report.faults)
            std::cerr << "mtc_check: trace fault ["
                      << traceFaultName(f.kind) << "] " << f.detail
                      << "\n";

        const int code = campaignExitCode(totals);
        if (code == kExitViolation)
            return code; // a real violation outranks trace damage
        if (report.anyFault())
            return kExitTraceFault;
        return code;
    } catch (const TraceError &err) {
        std::cerr << "mtc_check: trace fault ["
                  << traceFaultName(err.kind()) << "] " << err.what()
                  << "\n";
        return kExitTraceFault;
    } catch (const Error &err) {
        std::cerr << "mtc_check: " << err.what() << "\n";
        return kExitConfigError;
    } catch (const std::exception &err) {
        std::cerr << "mtc_check: " << err.what() << "\n";
        return kExitConfigError;
    }
}
