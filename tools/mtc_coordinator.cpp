/**
 * @file
 * mtc_coordinator — distributed MCM validation campaigns.
 *
 * Owns a campaign plan and serves its (config, test) units over the
 * TCP fabric (src/dist/) to a fleet of workers: `--workers N` loopback
 * processes forked locally, plus any external `mtc_worker` processes
 * that attach to the same port. Results are merged into per-config
 * summaries that are bit-identical to a serial in-process run
 * (`--serial`) at any fleet size — the CI smoke byte-diffs the two.
 *
 * Usage:
 *   mtc_coordinator [options]
 *     --config NAME       test configuration, repeatable
 *                         [x86-4-50-64]
 *     --tests N           tests per configuration            [3]
 *     --iterations N      runs per test                      [512]
 *     --seed N            campaign seed                      [2017]
 *     --fault-bitflip P   per-word signature bit-flip rate   [0]
 *     --fault-torn P      torn multi-word store rate         [0]
 *     --fault-truncate P  per-thread stream truncation rate  [0]
 *     --fault-drop P      lost-iteration rate                [0]
 *     --fault-dup P       duplicated-iteration rate          [0]
 *     --fault-seed N      fault injector seed                [0xfa017]
 *     --confirm-k N       K-re-execution confirmation budget [2]
 *     --journal PATH      write-ahead unit journal (crash-safe)
 *     --resume            replay completed units from --journal
 *     --dump-trace PATH   dump the finished campaign's signature
 *                         streams for offline checking (mtc_check)
 *     --test-timeout-ms N per-test watchdog deadline (worker-side)
 *     --port N            TCP port; 0 = ephemeral            [0]
 *     --port-file PATH    write the bound port here once listening
 *     --workers N         loopback workers to fork; 0 waits for
 *                         external mtc_worker processes      [2]
 *     --batch N           units per lease                    [2]
 *     --max-in-flight N   open leases per worker             [2]
 *     --heartbeat-timeout-ms N  drop a silent worker after N ms
 *                         [10000]
 *     --lease-timeout-ms N  reassign a lease older than N ms [off]
 *     --serial            run in-process instead (the baseline the
 *                         distributed summary must match byte for
 *                         byte)
 *     --fabric-key-file PATH  pre-shared key: workers must prove
 *                         possession before any lease, and all
 *                         post-handshake frames carry MACs
 *     --audit-rate P      Byzantine audit: fraction of units
 *                         re-executed by a second worker and
 *                         cross-compared                     [0]
 *     --net-fault-drop P / --net-fault-dup P / --net-fault-corrupt P
 *     --net-fault-delay P / --net-fault-reorder P / --net-fault-drip P
 *     --net-fault-disconnect P
 *                         chaos drills: seeded per-frame fault rates
 *                         on every fabric connection         [0]
 *     --net-fault-delay-ms N  injected delay length          [20]
 *     --net-fault-seed N  chaos RNG seed                     [0]
 *     --drill-exit-after N  failure drill: loopback worker 0 _exit()s
 *                         abruptly after N results (dies mid-batch)
 *     --drill-corrupt-results  failure drill: the last loopback
 *                         worker silently corrupts every result; an
 *                         audit must quarantine it
 *     --verbose           per-config detail table
 *     --help
 *
 * Exit status mirrors mtc_validate:
 *   0 clean, 1 config error, 2 confirmed violation, 3 corruption
 *   only, 4 failed/abandoned units, 5 hang, 6 breaker tripped.
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "harness/campaign.h"
#include "harness/campaign_report.h"
#include "harness/exit_codes.h"
#include "support/table.h"
#include "testgen/test_config.h"

using namespace mtc;

namespace
{

struct Options
{
    std::vector<std::string> configNames;
    CampaignConfig campaign;
    bool serial = false;
    bool verbose = false;
};

void
usage()
{
    std::cout <<
        "mtc_coordinator: distributed MCM validation campaigns\n"
        "  --config NAME     test configuration, repeatable\n"
        "                    [x86-4-50-64]\n"
        "  --tests N         tests per configuration [3]\n"
        "  --iterations N    runs per test [512]\n"
        "  --seed N          campaign seed [2017]\n"
        "  --fault-bitflip P per-word signature bit-flip rate [0]\n"
        "  --fault-torn P    torn multi-word store rate [0]\n"
        "  --fault-truncate P per-thread stream truncation rate [0]\n"
        "  --fault-drop P    lost-iteration rate [0]\n"
        "  --fault-dup P     duplicated-iteration rate [0]\n"
        "  --fault-seed N    fault injector seed [0xfa017]\n"
        "  --confirm-k N     K-re-execution confirmation budget [2]\n"
        "  --journal PATH    crash-safe write-ahead unit journal; a\n"
        "                    SIGKILLed coordinator resumes from it\n"
        "  --resume          replay completed units from --journal;\n"
        "                    the summary is bit-identical to an\n"
        "                    uninterrupted run\n"
        "  --dump-trace PATH dump the finished campaign's signature\n"
        "                    streams as a versioned trace; mtc_check\n"
        "                    re-checks it offline to byte-identical\n"
        "                    summaries (env: MTC_DUMP_TRACE)\n"
        "  --test-timeout-ms N  worker-side watchdog deadline [off]\n"
        "  --port N          TCP port; 0 = ephemeral [0]\n"
        "  --port-file PATH  write the bound port (decimal, one line)\n"
        "                    once listening — how scripts find an\n"
        "                    ephemeral port\n"
        "  --workers N       loopback workers to fork; 0 forks none\n"
        "                    and waits for external mtc_worker\n"
        "                    processes [2]\n"
        "  --batch N         units per lease [2]\n"
        "  --max-in-flight N open leases per worker (backpressure:\n"
        "                    a slow worker holds few units while fast\n"
        "                    ones drain the queue) [2]\n"
        "  --heartbeat-timeout-ms N  declare a silent worker dead\n"
        "                    after N ms and reassign its leases\n"
        "                    [10000]\n"
        "  --lease-timeout-ms N  reassign any lease still open after\n"
        "                    N ms (the worker may stay connected);\n"
        "                    0 = off [0]\n"
        "  --serial          run the campaign in-process instead of\n"
        "                    over the fabric: the baseline the\n"
        "                    distributed summary must match byte for\n"
        "                    byte\n"
        "  --fabric-key-file PATH  pre-shared key file (generate:\n"
        "                    head -c 32 /dev/urandom | base64 > f).\n"
        "                    Workers must prove possession before any\n"
        "                    lease; post-handshake frames carry MACs\n"
        "                    and sequence numbers [keyless]\n"
        "  --audit-rate P    Byzantine audit: fraction of units\n"
        "                    re-executed by a second worker and\n"
        "                    cross-compared; a deviating worker is\n"
        "                    quarantined and its results re-run [0]\n"
        "  --net-fault-drop P / --net-fault-dup P /\n"
        "  --net-fault-corrupt P / --net-fault-delay P /\n"
        "  --net-fault-reorder P / --net-fault-drip P /\n"
        "  --net-fault-disconnect P\n"
        "                    chaos drills: seeded per-frame fault\n"
        "                    rates on every fabric connection [0]\n"
        "  --net-fault-delay-ms N  injected delay length [20]\n"
        "  --net-fault-seed N  chaos RNG seed [0]\n"
        "  --drill-exit-after N  failure drill: loopback worker 0\n"
        "                    _exit()s abruptly after sending N\n"
        "                    results, leaving its lease unreported;\n"
        "                    the summary must not change; 0 = off [0]\n"
        "  --drill-corrupt-results  failure drill: the last loopback\n"
        "                    worker silently corrupts every result\n"
        "                    it returns; only --audit-rate > 0 can\n"
        "                    catch and quarantine it [off]\n"
        "  --verbose         per-config detail table\n"
        "exit codes: 0 clean, 1 config error, 2 confirmed violation,\n"
        "            3 corruption only, 4 failed/abandoned units,\n"
        "            5 hang, 6 circuit breaker tripped\n";
}

std::uint64_t
parseCount(const std::string &flag, const std::string &text,
           int base = 10)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t value = std::stoull(text, &pos, base);
        if (pos == text.size() && text[0] != '-')
            return value;
    } catch (const std::exception &) {
    }
    throw ConfigError(flag + " expects an unsigned integer, got \"" +
                      text + "\"");
}

double
parseRate(const std::string &flag, const std::string &text)
{
    try {
        std::size_t pos = 0;
        const double value = std::stod(text, &pos);
        if (pos == text.size())
            return value;
    } catch (const std::exception &) {
    }
    throw ConfigError(flag + " expects a number, got \"" + text + "\"");
}

double
parseRate01(const std::string &flag, const std::string &text)
{
    const double value = parseRate(flag, text);
    if (!(value >= 0.0 && value <= 1.0))
        throw ConfigError(flag + " expects a fraction in [0, 1], got \"" +
                          text + "\"");
    return value;
}

/** Chaos flags hit both directions; the split is API surface only. */
void
setFaultRate(CampaignConfig &c, double NetFaultRates::*field,
             double rate)
{
    c.distNetFault.send.*field = rate;
    c.distNetFault.recv.*field = rate;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    CampaignConfig &c = opt.campaign;
    c.iterations = 512;
    c.testsPerConfig = 3;
    c.runConventional = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                throw ConfigError("missing value after " + arg);
            return argv[i];
        };
        if (arg == "--config")
            opt.configNames.push_back(next());
        else if (arg == "--tests")
            c.testsPerConfig =
                static_cast<unsigned>(parseCount(arg, next()));
        else if (arg == "--iterations")
            c.iterations = parseCount(arg, next());
        else if (arg == "--seed")
            c.seed = parseCount(arg, next());
        else if (arg == "--fault-bitflip")
            c.fault.bitFlipRate = parseRate(arg, next());
        else if (arg == "--fault-torn")
            c.fault.tornStoreRate = parseRate(arg, next());
        else if (arg == "--fault-truncate")
            c.fault.truncationRate = parseRate(arg, next());
        else if (arg == "--fault-drop")
            c.fault.dropRate = parseRate(arg, next());
        else if (arg == "--fault-dup")
            c.fault.duplicateRate = parseRate(arg, next());
        else if (arg == "--fault-seed")
            c.fault.seed = parseCount(arg, next(), 0);
        else if (arg == "--confirm-k")
            c.recovery.confirmationRuns =
                static_cast<unsigned>(parseCount(arg, next()));
        else if (arg == "--journal") {
            c.journalPath = next();
            if (c.journalPath.empty())
                throw ConfigError("--journal expects a non-empty path");
        } else if (arg == "--resume")
            c.resume = true;
        else if (arg == "--dump-trace") {
            c.dumpTracePath = next();
            if (c.dumpTracePath.empty())
                throw ConfigError(
                    "--dump-trace expects a non-empty path");
        } else if (arg == "--test-timeout-ms")
            c.testTimeoutMs = parseCount(arg, next());
        else if (arg == "--port")
            c.distPort =
                static_cast<std::uint16_t>(parseCount(arg, next()));
        else if (arg == "--port-file")
            c.distPortFile = next();
        else if (arg == "--workers")
            c.distWorkers =
                static_cast<unsigned>(parseCount(arg, next()));
        else if (arg == "--batch")
            c.distBatch =
                static_cast<unsigned>(parseCount(arg, next()));
        else if (arg == "--max-in-flight")
            c.distMaxInFlight =
                static_cast<unsigned>(parseCount(arg, next()));
        else if (arg == "--heartbeat-timeout-ms")
            c.distHeartbeatTimeoutMs = parseCount(arg, next());
        else if (arg == "--lease-timeout-ms")
            c.distLeaseTimeoutMs = parseCount(arg, next());
        else if (arg == "--serial")
            opt.serial = true;
        else if (arg == "--fabric-key-file") {
            c.distKeyFile = next();
            if (c.distKeyFile.empty())
                throw ConfigError(
                    "--fabric-key-file expects a non-empty path");
        } else if (arg == "--audit-rate")
            c.distAuditRate = parseRate01(arg, next());
        else if (arg == "--net-fault-drop")
            setFaultRate(c, &NetFaultRates::drop,
                         parseRate01(arg, next()));
        else if (arg == "--net-fault-dup")
            setFaultRate(c, &NetFaultRates::duplicate,
                         parseRate01(arg, next()));
        else if (arg == "--net-fault-corrupt")
            setFaultRate(c, &NetFaultRates::corrupt,
                         parseRate01(arg, next()));
        else if (arg == "--net-fault-delay")
            setFaultRate(c, &NetFaultRates::delay,
                         parseRate01(arg, next()));
        else if (arg == "--net-fault-reorder")
            setFaultRate(c, &NetFaultRates::reorder,
                         parseRate01(arg, next()));
        else if (arg == "--net-fault-drip")
            setFaultRate(c, &NetFaultRates::drip,
                         parseRate01(arg, next()));
        else if (arg == "--net-fault-disconnect")
            setFaultRate(c, &NetFaultRates::disconnect,
                         parseRate01(arg, next()));
        else if (arg == "--net-fault-delay-ms")
            c.distNetFault.delayMs = parseCount(arg, next());
        else if (arg == "--net-fault-seed")
            c.distNetFault.seed = parseCount(arg, next(), 0);
        else if (arg == "--drill-exit-after")
            c.distDrillExitAfter = parseCount(arg, next());
        else if (arg == "--drill-corrupt-results")
            c.distDrillCorrupt = true;
        else if (arg == "--verbose")
            opt.verbose = true;
        else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            throw ConfigError("unknown option: " + arg);
        }
    }
    if (c.resume && c.journalPath.empty())
        throw ConfigError("--resume needs a journal (--journal PATH)");
    if (opt.configNames.empty())
        opt.configNames.push_back("x86-4-50-64");
    c.mode = opt.serial ? ExecutionMode::InProcess
                        : ExecutionMode::Distributed;
    return opt;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        Options opt = parseArgs(argc, argv);
        FabricStats fabric_stats;
        if (!opt.serial)
            opt.campaign.distStatsOut = &fabric_stats;
        std::vector<TestConfig> configs;
        configs.reserve(opt.configNames.size());
        for (const std::string &name : opt.configNames)
            configs.push_back(parseConfigName(name));

        const CampaignConfig &c = opt.campaign;
        std::cout << "MTraceCheck "
                  << (opt.serial ? "serial" : "distributed")
                  << " campaign: " << configs.size() << " configs x "
                  << c.testsPerConfig << " tests x " << c.iterations
                  << " iterations";
        if (!opt.serial)
            std::cout << ", " << c.distWorkers
                      << " loopback workers, batch " << c.distBatch
                      << ", max in-flight " << c.distMaxInFlight;
        std::cout << "\n\n";

        const std::vector<ConfigSummary> summaries =
            runCampaign(configs, opt.campaign);

        if (opt.verbose) {
            TablePrinter table({"config", "tests", "unique sigs",
                                "violations", "failed", "hung",
                                "retries"});
            for (const ConfigSummary &s : summaries) {
                table.addRow(
                    {s.cfg.name(),
                     TablePrinter::fmt(std::uint64_t(s.tests)),
                     TablePrinter::fmt(s.avgUniqueSignatures, 2),
                     TablePrinter::fmt(s.violations),
                     TablePrinter::fmt(
                         std::uint64_t(s.failedTests)),
                     TablePrinter::fmt(std::uint64_t(s.hungTests)),
                     TablePrinter::fmt(
                         std::uint64_t(s.testRetriesUsed))});
            }
            table.print(std::cout);
            std::cout << "\n";
        }

        // Deterministic summary block: one line per config plus a
        // campaign digest, all free of wall-clock — this is what the
        // CI smoke byte-diffs between --serial and distributed runs,
        // and what mtc_check reproduces from a dumped trace
        // (campaign_report.h is the single source of those bytes).
        const CampaignTotals totals = printCampaignReport(
            std::cout, std::cerr, "mtc_coordinator", summaries);

        // Operational fabric report. Deliberately NOT prefixed
        // "campaign": the CI smoke byte-compares `grep '^campaign'`
        // between serial and distributed runs, and audit bookkeeping
        // is not part of that deterministic contract.
        if (!opt.serial && opt.campaign.distAuditRate > 0.0) {
            const ByzantineStats &b = fabric_stats.byzantine;
            std::cout << "fabric byzantine: audits=" << b.auditsScheduled
                      << " passed=" << b.auditsPassed
                      << " mismatches=" << b.auditMismatches
                      << " skipped=" << b.auditsSkipped
                      << " arbitrations=" << b.localArbitrations
                      << " invalidated=" << b.resultsInvalidated
                      << " quarantined=";
            if (b.quarantined.empty()) {
                std::cout << "-";
            } else {
                for (std::size_t i = 0; i < b.quarantined.size(); ++i)
                    std::cout << (i ? "," : "") << b.quarantined[i];
            }
            std::cout << "\n";
        }

        return campaignExitCode(totals);
    } catch (const Error &err) {
        std::cerr << "mtc_coordinator: " << err.what() << "\n";
        return kExitConfigError;
    } catch (const std::exception &err) {
        std::cerr << "mtc_coordinator: " << err.what() << "\n";
        return kExitConfigError;
    }
}
