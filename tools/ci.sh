#!/usr/bin/env bash
# Tier-1 CI: build + ctest twice — once plain, once under ASan+UBSan
# (the MTC_SANITIZE CMake option). Usage: tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_suite() {
    local build_dir="$1"; shift
    echo "=== configure ${build_dir} ($*) ==="
    cmake -B "${build_dir}" -S . "$@"
    echo "=== build ${build_dir} ==="
    cmake --build "${build_dir}" -j "${jobs}"
    echo "=== ctest ${build_dir} ==="
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

run_suite build -DMTC_SANITIZE=OFF
run_suite build-asan -DMTC_SANITIZE=ON

echo "=== CI OK: plain and sanitized suites both green ==="
