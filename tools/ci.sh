#!/usr/bin/env bash
# Tier-1 CI: build + ctest three times — plain, under ASan+UBSan (the
# MTC_SANITIZE CMake option), and with the SIMD hot-loop kernels
# enabled (MTC_SIMD=ON, which must stay bit-identical to the scalar
# fallback) — then re-run the plain and ASan suites with the
# parallel engine active (MTC_THREADS=4) so scheduling bugs and
# pool-shutdown races can't hide behind the serial default, then
# scaling- and hotpath-bench smoke runs so the BENCH_*.json emitters
# can't silently rot (the hotpath smoke also proves the arena-reusing
# hot path stays bit-identical to per-iteration arenas), and finally a
# kill-and-resume smoke: a journaled campaign is SIGKILLed mid-run and
# resumed, and its summary must match an uninterrupted run verbatim.
# The sandbox passes then prove real crash containment end to end: a
# --die-after drill SIGSEGVs a worker mid-campaign and the run must
# finish every other unit and exit with the documented crash code, and
# the kill-and-resume smoke is repeated in sandbox mode. The
# distributed smoke closes the loop for the TCP fabric: a coordinator
# plus two external workers, one SIGKILLed mid-run, and the summary
# (digests included) must be byte-identical to the serial run. The
# trace round-trip smoke covers the offline split: a --dump-trace
# campaign re-checked by mtc_check must reproduce the inline summary
# byte for byte, and a torn copy of the trace must exit with the
# classified trace-fault code.
# Usage: tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_suite() {
    local build_dir="$1"; shift
    echo "=== configure ${build_dir} ($*) ==="
    cmake -B "${build_dir}" -S . "$@"
    echo "=== build ${build_dir} ==="
    cmake --build "${build_dir}" -j "${jobs}"
    echo "=== ctest ${build_dir} ==="
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

run_suite build -DMTC_SANITIZE=OFF
run_suite build-asan -DMTC_SANITIZE=ON

# SIMD pass: the same suite with the vectorized hot-loop kernels
# compiled in (MTC_SIMD=ON). Every batched-vs-scalar bit-identity
# test then runs against the SIMD first-match kernel, so a lane-order
# divergence in the vector paths fails tier-1 instead of only showing
# up as a bench digest mismatch.
run_suite build-simd -DMTC_SANITIZE=OFF -DMTC_SIMD=ON

# Parallel engine pass: campaigns fan (config, test) units across 4
# workers. Results must stay bit-identical to the serial runs above;
# the sanitized pass additionally checks the pool's shutdown/join
# discipline under ASan+UBSan.
echo "=== ctest build (MTC_THREADS=4) ==="
MTC_THREADS=4 ctest --test-dir build --output-on-failure -j "${jobs}"
echo "=== ctest build-asan (MTC_THREADS=4) ==="
MTC_THREADS=4 ctest --test-dir build-asan --output-on-failure -j "${jobs}"

echo "=== bench/scaling --smoke --sandbox --distributed ==="
./build/bench/scaling --smoke --sandbox --distributed
grep -q '"sandbox":' BENCH_scaling.smoke.json
grep -q '"distributed":' BENCH_scaling.smoke.json
grep -q '"trace_check":' BENCH_scaling.smoke.json

# Hot-path smoke at an explicit batch width: the bench exits non-zero
# if the batched, scalar, or fresh-arena passes diverge (signature-set
# digests included), and the grep guards the JSON field against
# emitter drift. The ASan pass runs the same lockstep engine under
# ASan+UBSan so SoA indexing bugs can't hide in the fast build.
echo "=== bench/hotpath --smoke --batch 8 (plain) ==="
./build/bench/hotpath --smoke --batch 8
grep -q '"deterministic": true' BENCH_hotpath.smoke.json
echo "=== bench/hotpath --smoke --batch 8 (asan) ==="
./build-asan/bench/hotpath --smoke --batch 8
grep -q '"deterministic": true' BENCH_hotpath.smoke.json
echo "=== bench/hotpath --smoke --batch 8 (simd) ==="
./build-simd/bench/hotpath --smoke --batch 8
grep -q '"deterministic": true' BENCH_hotpath.smoke.json

# Streaming-check smoke: the same faulted campaign once through the
# streaming decode→check pipeline (the default, overlapped across 2
# flow threads) and once through the barrier baseline
# (--no-stream-check). Every summary line — campaign digests and the
# fault/quarantine accounting included — must be byte-identical, and
# so must the exit codes; this is the streamed-vs-barrier bit-identity
# gate end to end, in the plain, sanitized, and SIMD trees.
stream_smoke() {
    local bin="$1" tag="$2"
    local streamed="build/ci_stream_${tag}.stream.txt"
    local barrier="build/ci_stream_${tag}.barrier.txt"
    local args=(--config ARM-4-100-64 --tests 6 --iterations 1024
                --seed 3 --shard-size 32 --fault-bitflip 0.01
                --fault-truncate 0.005)
    rm -f "${streamed}" "${barrier}"
    local stream_rc=0 barrier_rc=0
    "${bin}" "${args[@]}" --threads 2 --stream-window 7 \
        > "${streamed}" || stream_rc=$?
    [ "${stream_rc}" -ne 1 ]
    "${bin}" "${args[@]}" --no-stream-check \
        > "${barrier}" || barrier_rc=$?
    [ "${barrier_rc}" -eq "${stream_rc}" ]
    diff <(grep -E "^campaign|fault summary" "${streamed}") \
         <(grep -E "^campaign|fault summary" "${barrier}")
    rm -f "${streamed}" "${barrier}"
}

echo "=== streaming-check smoke (plain) ==="
stream_smoke ./build/tools/mtc_validate plain
echo "=== streaming-check smoke (asan) ==="
stream_smoke ./build-asan/tools/mtc_validate asan
echo "=== streaming-check smoke (simd) ==="
stream_smoke ./build-simd/tools/mtc_validate simd

# Kill-and-resume smoke: run a journaled campaign, SIGKILL it mid-run
# (tearing whatever record was in flight), resume from the journal,
# and require the resumed summary to match an uninterrupted run line
# for line — exit code included. Fault injection is on so the
# quarantine/confirmation stats are part of the comparison; the
# verdict exit codes (2 violation / 3 corruption-only) are expected
# outcomes, a config error (1) is not.
resume_smoke() {
    local bin="$1" tag="$2" kill_after="$3"; shift 3
    local extra=("$@")
    local j="build/ci_resume_${tag}.journal"
    local base="build/ci_resume_${tag}.base.txt"
    local resumed="build/ci_resume_${tag}.resumed.txt"
    local args=(--config x86-4-100-64 --tests 16 --iterations 2048
                --seed 7 --fault-bitflip 0.005 "${extra[@]}")
    rm -f "${j}" "${base}" "${resumed}"
    local base_rc=0 resume_rc=0
    "${bin}" "${args[@]}" > "${base}" || base_rc=$?
    [ "${base_rc}" -ne 1 ]
    timeout -s KILL "${kill_after}" \
        "${bin}" "${args[@]}" --journal "${j}" > /dev/null || true
    "${bin}" "${args[@]}" --journal "${j}" --resume \
        > "${resumed}" || resume_rc=$?
    [ "${resume_rc}" -eq "${base_rc}" ]
    grep -q "resume:" "${resumed}"
    diff <(grep -E "campaign summary|fault summary" "${base}") \
         <(grep -E "campaign summary|fault summary" "${resumed}")
    rm -f "${j}" "${base}" "${resumed}"
}

echo "=== kill-and-resume smoke (plain) ==="
resume_smoke ./build/tools/mtc_validate plain 2
echo "=== kill-and-resume smoke (asan) ==="
resume_smoke ./build-asan/tools/mtc_validate asan 4

# Sandbox kill-and-resume: same contract with every unit executed in a
# forked worker (the baseline for the summary diff is the in-process
# run above being bit-identical is already covered by sandbox_test, so
# here the sandboxed run is its own baseline and the resumed summary
# must match it). The ASan pass exercises the MTC_SANITIZE_BUILD
# rlimit gating: --sandbox-mem-mb must warn-and-skip, not break.
echo "=== kill-and-resume smoke (sandbox, plain) ==="
resume_smoke ./build/tools/mtc_validate sbx 2 --sandbox --threads 2
echo "=== kill-and-resume smoke (sandbox, asan) ==="
resume_smoke ./build-asan/tools/mtc_validate sbx_asan 4 \
    --sandbox --threads 2 --sandbox-mem-mb 2048

# Containment smoke: a --die-after drill raises a REAL SIGSEGV in a
# worker mid-campaign. The campaign must survive it, complete every
# test (the respawned worker retries the killed unit), report the
# contained crash, and exit with the documented platform-crash code 4.
containment_smoke() {
    local bin="$1" tag="$2"
    local out="build/ci_contain_${tag}.txt"
    local rc=0
    "${bin}" --config x86-2-50-32 --tests 6 --iterations 256 --seed 11 \
        --sandbox --threads 2 --die-after 40 --crash-retries 1 \
        > "${out}" 2>&1 || rc=$?
    [ "${rc}" -eq 4 ]
    grep -q "contained worker crashes" "${out}"
    grep -Eq "campaign summary: [0-9]+/6 tests flagged" "${out}"
    grep -q "platform crashes" "${out}"
    rm -f "${out}"
}

echo "=== crash-containment smoke (plain) ==="
containment_smoke ./build/tools/mtc_validate plain
echo "=== crash-containment smoke (asan) ==="
containment_smoke ./build-asan/tools/mtc_validate asan

# Distributed-fabric smoke: the same campaign once serial in-process
# (mtc_coordinator --serial) and once served over the TCP fabric to
# two external mtc_worker processes, one of which is SIGKILLed
# mid-run so its leased units are reassigned to the survivor. Exit
# codes must match and every `campaign ...` summary line — the
# per-config digests and the campaign digest included — must be
# byte-identical: the bit-identity gate, end to end, across a real
# worker death.
dist_smoke() {
    local bin_dir="$1" tag="$2"
    local coord="${bin_dir}/tools/mtc_coordinator"
    local worker="${bin_dir}/tools/mtc_worker"
    local base="build/ci_dist_${tag}.base.txt"
    local distd="build/ci_dist_${tag}.dist.txt"
    local disterr="build/ci_dist_${tag}.dist.err"
    local pf="build/ci_dist_${tag}.port"
    # Units heavy enough (8192 iterations) that the fleet is still
    # mid-campaign when the kill below lands, even on a fast machine.
    local args=(--config x86-2-50-32 --config ARM-2-50-32 --tests 6
                --iterations 8192 --seed 13)
    rm -f "${base}" "${distd}" "${disterr}" "${pf}"
    local base_rc=0 dist_rc=0
    "${coord}" "${args[@]}" --serial > "${base}" || base_rc=$?
    [ "${base_rc}" -ne 1 ]
    # No loopback fleet (--workers 0): the coordinator waits for the
    # external workers below, exactly the multi-host attach flow.
    timeout -s KILL 300 \
        "${coord}" "${args[@]}" --workers 0 --port-file "${pf}" \
        > "${distd}" 2> "${disterr}" &
    local coord_pid=$!
    for _ in $(seq 1 100); do [ -s "${pf}" ] && break; sleep 0.1; done
    [ -s "${pf}" ]
    local port
    port="$(cat "${pf}")"
    # The doomed worker is slow (200ms/unit), so the units it holds
    # leases on at kill time are guaranteed still unreported.
    "${worker}" --connect "127.0.0.1:${port}" --name doomed \
        --unit-delay-ms 200 > /dev/null 2>&1 &
    local doomed_pid=$!
    "${worker}" --connect "127.0.0.1:${port}" --name steady \
        > /dev/null 2>&1 &
    local steady_pid=$!
    sleep 0.5
    kill -9 "${doomed_pid}" 2> /dev/null || true
    wait "${coord_pid}" || dist_rc=$?
    wait "${steady_pid}" 2> /dev/null || true
    wait "${doomed_pid}" 2> /dev/null || true
    [ "${dist_rc}" -eq "${base_rc}" ]
    # The kill must have been observed as a mid-campaign worker loss,
    # and the merged summary must still match serial byte for byte.
    grep -q "lost worker 'doomed'" "${disterr}"
    diff <(grep '^campaign' "${base}") <(grep '^campaign' "${distd}")
    rm -f "${base}" "${distd}" "${disterr}" "${pf}"
}

echo "=== distributed-fabric smoke (plain) ==="
dist_smoke ./build plain
echo "=== distributed-fabric smoke (asan) ==="
dist_smoke ./build-asan asan

# Trace round-trip smoke: the offline-checking gate. A faulted
# campaign runs once with --dump-trace, then mtc_check re-checks the
# trace standalone, and every `campaign` summary line — per-config
# digests and the campaign digest included — must be byte-identical
# to the inline run, with matching exit codes. A truncated copy of
# the same trace must then land on the documented trace-fault code 7
# with a classified [truncated] diagnostic, never a crash.
trace_smoke() {
    local bin_dir="$1" tag="$2"
    local coord="${bin_dir}/tools/mtc_coordinator"
    local check="${bin_dir}/tools/mtc_check"
    local trace="build/ci_trace_${tag}.trace"
    local dist_trace="build/ci_trace_${tag}.dist.trace"
    local torn="build/ci_trace_${tag}.torn.trace"
    local inline_out="build/ci_trace_${tag}.inline.txt"
    local dist_out="build/ci_trace_${tag}.distrun.txt"
    local check_out="build/ci_trace_${tag}.check.txt"
    local torn_out="build/ci_trace_${tag}.torn.txt"
    local torn_err="build/ci_trace_${tag}.torn.err"
    local args=(--config x86-2-50-32 --config ARM-2-50-32 --tests 4
                --iterations 1024 --seed 23 --fault-bitflip 0.01)
    rm -f "${trace}" "${dist_trace}" "${torn}" "${inline_out}" \
        "${dist_out}" "${check_out}" "${torn_out}" "${torn_err}"
    local inline_rc=0 check_rc=0 dist_rc=0 dchk_rc=0 torn_rc=0
    "${coord}" "${args[@]}" --serial --dump-trace "${trace}" \
        > "${inline_out}" || inline_rc=$?
    [ "${inline_rc}" -ne 1 ]
    "${check}" "${trace}" > "${check_out}" || check_rc=$?
    [ "${check_rc}" -eq "${inline_rc}" ]
    diff <(grep '^campaign' "${inline_out}") \
         <(grep '^campaign' "${check_out}")
    # The distributed producer (2 loopback workers, units reported out
    # of order) must dump a trace whose offline check still lands on
    # the very same summary lines as the serial inline run.
    "${coord}" "${args[@]}" --workers 2 --dump-trace "${dist_trace}" \
        > "${dist_out}" 2> /dev/null || dist_rc=$?
    [ "${dist_rc}" -eq "${inline_rc}" ]
    "${check}" "${dist_trace}" > "${check_out}" || dchk_rc=$?
    [ "${dchk_rc}" -eq "${inline_rc}" ]
    diff <(grep '^campaign' "${inline_out}") \
         <(grep '^campaign' "${check_out}")
    # Tear off the trace tail: the checker must recover the longest
    # intact prefix, report the loss as a classified fault, and exit
    # with the trace-fault code — crashing or hanging fails the gate.
    head -c "$(($(stat -c %s "${trace}") * 3 / 5))" "${trace}" \
        > "${torn}"
    "${check}" "${torn}" > "${torn_out}" 2> "${torn_err}" \
        || torn_rc=$?
    [ "${torn_rc}" -eq 7 ]
    grep -q "trace fault \[truncated\]" "${torn_err}"
    grep -q "^trace check:" "${torn_out}"
    rm -f "${trace}" "${dist_trace}" "${torn}" "${inline_out}" \
        "${dist_out}" "${check_out}" "${torn_out}" "${torn_err}"
}

echo "=== trace round-trip smoke (plain) ==="
trace_smoke ./build plain
echo "=== trace round-trip smoke (asan) ==="
trace_smoke ./build-asan asan

# Chaos smoke: the hardened-fabric gate. A keyed coordinator drives a
# 3-worker loopback fleet through seeded network faults (drops,
# duplicates, corruption) with a 100% Byzantine audit, while the last
# worker silently corrupts every result it sends. The campaign must
# finish, quarantine exactly the corrupt worker, and land on
# `campaign` summary lines byte-identical to the serial run — faults
# and lies may cost time, never bits. A wrong-key worker attaching
# mid-run must be turned away before any lease (fatal exit 3).
chaos_smoke() {
    local bin_dir="$1" tag="$2"
    local coord="${bin_dir}/tools/mtc_coordinator"
    local worker="${bin_dir}/tools/mtc_worker"
    local base="build/ci_chaos_${tag}.base.txt"
    local distd="build/ci_chaos_${tag}.dist.txt"
    local disterr="build/ci_chaos_${tag}.dist.err"
    local wkey="build/ci_chaos_${tag}.wrong.out"
    local pf="build/ci_chaos_${tag}.port"
    local key="build/ci_chaos_${tag}.key"
    local badkey="build/ci_chaos_${tag}.badkey"
    local args=(--config x86-2-50-32 --config ARM-2-50-32 --tests 4
                --iterations 2048 --seed 17)
    rm -f "${base}" "${distd}" "${disterr}" "${wkey}" "${pf}" \
        "${key}" "${badkey}"
    head -c 32 /dev/urandom | base64 > "${key}"
    head -c 32 /dev/urandom | base64 > "${badkey}"
    local base_rc=0 dist_rc=0 wrong_rc=0
    "${coord}" "${args[@]}" --serial > "${base}" || base_rc=$?
    [ "${base_rc}" -ne 1 ]
    timeout -s KILL 300 \
        "${coord}" "${args[@]}" --workers 3 --port-file "${pf}" \
        --fabric-key-file "${key}" --audit-rate 1.0 \
        --drill-corrupt-results \
        --net-fault-drop 0.03 --net-fault-dup 0.03 \
        --net-fault-corrupt 0.02 --net-fault-seed 7 \
        > "${distd}" 2> "${disterr}" &
    local coord_pid=$!
    for _ in $(seq 1 100); do [ -s "${pf}" ] && break; sleep 0.1; done
    [ -s "${pf}" ]
    local port
    port="$(cat "${pf}")"
    # An impostor with the wrong key must fail the mutual proof and
    # exit fatally — without ever seeing a lease or the campaign spec.
    "${worker}" --connect "127.0.0.1:${port}" --name impostor \
        --fabric-key-file "${badkey}" > "${wkey}" 2>&1 || wrong_rc=$?
    [ "${wrong_rc}" -eq 3 ]
    grep -q "key proof" "${wkey}"
    wait "${coord_pid}" || dist_rc=$?
    [ "${dist_rc}" -eq "${base_rc}" ]
    # The corrupt worker (the fleet's last, loop-2) must have been
    # caught by the audit and quarantined...
    grep -q "quarantining worker 'loop-2'" "${disterr}"
    grep -Eq "fabric byzantine: .*quarantined=loop-2" "${distd}"
    # ...and the summary must not have moved by a bit.
    diff <(grep '^campaign' "${base}") <(grep '^campaign' "${distd}")
    rm -f "${base}" "${distd}" "${disterr}" "${wkey}" "${pf}" \
        "${key}" "${badkey}"
}

echo "=== chaos smoke: faults + Byzantine quarantine (plain) ==="
chaos_smoke ./build plain
echo "=== chaos smoke: faults + Byzantine quarantine (asan) ==="
chaos_smoke ./build-asan asan

echo "=== CI OK: plain, sanitized, simd, parallel, resume, sandbox, distributed, trace, and chaos suites all green ==="
