#!/usr/bin/env bash
# Tier-1 CI: build + ctest twice — once plain, once under ASan+UBSan
# (the MTC_SANITIZE CMake option) — then re-run both suites with the
# parallel engine active (MTC_THREADS=4) so scheduling bugs and
# pool-shutdown races can't hide behind the serial default, and
# finally scaling- and hotpath-bench smoke runs so the BENCH_*.json
# emitters can't silently rot (the hotpath smoke also proves the
# arena-reusing hot path stays bit-identical to per-iteration arenas).
# Usage: tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_suite() {
    local build_dir="$1"; shift
    echo "=== configure ${build_dir} ($*) ==="
    cmake -B "${build_dir}" -S . "$@"
    echo "=== build ${build_dir} ==="
    cmake --build "${build_dir}" -j "${jobs}"
    echo "=== ctest ${build_dir} ==="
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

run_suite build -DMTC_SANITIZE=OFF
run_suite build-asan -DMTC_SANITIZE=ON

# Parallel engine pass: campaigns fan (config, test) units across 4
# workers. Results must stay bit-identical to the serial runs above;
# the sanitized pass additionally checks the pool's shutdown/join
# discipline under ASan+UBSan.
echo "=== ctest build (MTC_THREADS=4) ==="
MTC_THREADS=4 ctest --test-dir build --output-on-failure -j "${jobs}"
echo "=== ctest build-asan (MTC_THREADS=4) ==="
MTC_THREADS=4 ctest --test-dir build-asan --output-on-failure -j "${jobs}"

echo "=== bench/scaling --smoke ==="
./build/bench/scaling --smoke

# Hot-path smoke: the bench itself exits non-zero on an arena/fresh
# divergence, and the grep guards the JSON field against emitter drift.
echo "=== bench/hotpath --smoke ==="
./build/bench/hotpath --smoke
grep -q '"deterministic": true' BENCH_hotpath.smoke.json

echo "=== CI OK: plain, sanitized, and parallel suites all green ==="
